//! The request-execution engine: everything the server *means*,
//! separated from how requests arrive.
//!
//! [`Engine`] owns the sharded monitor, the durability state (WAL +
//! checkpoint triggers) and the shutdown/request counters, and executes
//! one request line at a time through [`Engine::respond`]. The TCP
//! layer ([`server`](crate::server)) wraps it in an accept loop and a
//! worker pool; the deterministic simulator (`attrition-sim`) drives it
//! directly through an in-memory transport — same code, same WAL, same
//! checkpoints, no sockets or threads required.
//!
//! All environment access goes through the [`env`](crate::env) seams:
//! the engine is constructed over an `Arc<dyn Storage>` and an
//! `Arc<dyn Clock>`, so "30 seconds since the last checkpoint" and
//! "fsync the log" mean real time and a real fsync in production, and
//! logical time and an in-memory buffer under simulation.

use crate::checkpoint::{self, CheckpointFormat};
use crate::env::{Clock, RealClock, RealStorage, Storage};
use crate::faults::FaultPlan;
use crate::protocol::{
    format_closed, format_closed_into, format_score, format_score_into, write_flush_line,
    write_ingest_line, BatchLines, ParseError, ParsedRequest, Request,
};
use crate::shard::ShardedMonitor;
use crate::wal::{SyncPolicy, Wal, WAL_FILE};
use attrition_core::WindowClosed;
use attrition_types::ItemId;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Configuration of the durability subsystem (WAL + checkpoints).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `checkpoint-*.ckpt` (created if
    /// missing).
    pub wal_dir: PathBuf,
    /// When appended WAL records are fsynced (see [`SyncPolicy`] for
    /// the per-policy ack guarantee).
    pub sync_policy: SyncPolicy,
    /// Checkpoint after this many logged requests (0 disables the
    /// count trigger).
    pub checkpoint_every_requests: u64,
    /// Checkpoint when this much time passed since the last one and at
    /// least one request was logged (`None` disables the time trigger).
    pub checkpoint_every: Option<Duration>,
    /// Checkpoints retained after rotation (older ones are pruned; ≥ 1).
    pub keep_checkpoints: usize,
    /// On-disk framing of written checkpoints (recovery reads either).
    pub checkpoint_format: CheckpointFormat,
    /// Fault-injection schedule for the WAL (tests only; `None` in
    /// production).
    pub fault_plan: Option<FaultPlan>,
}

impl DurabilityConfig {
    /// Defaults: fsync every append, checkpoint every 1024 logged
    /// requests or 30 s (whichever comes first), keep 2 binary-format
    /// checkpoints.
    pub fn new(wal_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            wal_dir: wal_dir.into(),
            sync_policy: SyncPolicy::Always,
            checkpoint_every_requests: 1024,
            checkpoint_every: Some(Duration::from_secs(30)),
            keep_checkpoints: 2,
            checkpoint_format: CheckpointFormat::Binary,
            fault_plan: None,
        }
    }
}

/// The durability state behind one lock: holding it across WAL append
/// *and* monitor apply keeps log order identical to apply order, and
/// makes every checkpoint an exact cut at `wal.last_seq()`.
struct Durable {
    wal: Wal,
    dir: PathBuf,
    storage: Arc<dyn Storage>,
    clock: Arc<dyn Clock>,
    checkpoint_every_requests: u64,
    checkpoint_every: Option<Duration>,
    keep_checkpoints: usize,
    checkpoint_format: CheckpointFormat,
    since_checkpoint: u64,
    last_checkpoint: Duration,
    checkpoints_written: u64,
}

impl Durable {
    /// Bookkeeping after a logged+applied request: fire a periodic
    /// checkpoint when a trigger is due. Checkpoint failures degrade to
    /// a counter + log line — the WAL still holds everything, so
    /// serving beats dying; the next trigger retries.
    fn after_logged(&mut self, monitor: &ShardedMonitor) {
        self.after_logged_n(monitor, 1);
    }

    /// [`after_logged`](Durable::after_logged) for a whole batch of `n`
    /// logged requests at once. Called only **after** the batch's apply
    /// loop — checkpointing between log and apply would cut at an LSN
    /// covering records the monitor has not absorbed yet, and the
    /// truncation would lose them.
    fn after_logged_n(&mut self, monitor: &ShardedMonitor, n: u64) {
        if n == 0 {
            return;
        }
        self.since_checkpoint += n;
        let due_count = self.checkpoint_every_requests > 0
            && self.since_checkpoint >= self.checkpoint_every_requests;
        let due_time = self
            .checkpoint_every
            .is_some_and(|every| self.clock.now().saturating_sub(self.last_checkpoint) >= every);
        if !(due_count || due_time) {
            return;
        }
        if let Err(e) = self.checkpoint_now(monitor) {
            attrition_obs::counter("serve.checkpoint.errors").inc();
            eprintln!("serve: periodic checkpoint failed (wal retained): {e}");
            // Reset the triggers so a persistent failure retries once
            // per period instead of once per request.
            self.since_checkpoint = 0;
            self.last_checkpoint = self.clock.now();
        }
    }

    /// Snapshot → atomic checkpoint write → prune → WAL truncation.
    fn checkpoint_now(&mut self, monitor: &ShardedMonitor) -> std::io::Result<()> {
        let started = self.clock.now();
        // Everything the checkpoint covers must be durable first, or a
        // crash right after truncation could lose acked-but-buffered
        // records under `interval`/`never` policies.
        self.wal.sync()?;
        let lsn = self.wal.last_seq();
        match self.checkpoint_format {
            CheckpointFormat::Text => {
                checkpoint::write_in(&*self.storage, &self.dir, lsn, &monitor.snapshot())?
            }
            CheckpointFormat::Binary => checkpoint::write_binary_in(
                &*self.storage,
                &self.dir,
                lsn,
                &monitor.snapshot_bytes(),
            )?,
        };
        let _ = checkpoint::prune_in(&*self.storage, &self.dir, self.keep_checkpoints);
        self.wal.truncate()?;
        self.since_checkpoint = 0;
        self.last_checkpoint = self.clock.now();
        self.checkpoints_written += 1;
        attrition_obs::counter("serve.checkpoint.writes").inc();
        attrition_obs::observe_ms(
            "serve.checkpoint.duration_ms",
            self.clock.now().saturating_sub(started).as_secs_f64() * 1e3,
        );
        attrition_obs::gauge("serve.checkpoint.lsn").set(lsn as i64);
        Ok(())
    }
}

fn lock_durable(durable: &Mutex<Durable>) -> MutexGuard<'_, Durable> {
    durable.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// What [`Engine::shutdown_flush`] reports back for the summary.
#[derive(Debug, Clone, Default)]
pub struct ShutdownReport {
    /// Why the shutdown checkpoint failed, if it did. A durable server
    /// exiting with this set must be treated as a crash: the WAL still
    /// holds the tail and recovery will replay it.
    pub checkpoint_error: Option<String>,
    /// Where the final legacy snapshot was written, if anywhere.
    pub snapshot_path: Option<PathBuf>,
    /// Why the final snapshot write failed, if it did.
    pub snapshot_error: Option<String>,
    /// WAL records appended over the engine's lifetime.
    pub wal_appends: u64,
    /// WAL fsyncs issued over the engine's lifetime.
    pub wal_fsyncs: u64,
    /// Checkpoints written (periodic + shutdown).
    pub checkpoints: u64,
}

/// What happened to one member of a batch frame — the attribution the
/// deterministic simulator needs to mirror a batched run op-by-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemberOutcome {
    /// The WAL sequence number the member's record got (0 when the
    /// member was not logged: read-only, parse error, or append failed).
    pub seq: u64,
    /// Whether a WAL record for this member is in the log file. A
    /// logged member whose group commit failed keeps `logged = true`
    /// (recovery may replay it) but is answered `ERR` and not applied.
    pub logged: bool,
    /// Whether the member mutated the live monitor.
    pub applied: bool,
}

/// Reusable per-connection scratch for executing batch frames: the item
/// arena the members parse into, their parsed forms, per-member
/// outcomes, the WAL op-line buffer, and the sorted-items buffer the
/// apply phase uses instead of building a `Basket` per receipt. After a
/// few warmup frames every buffer has reached its steady-state capacity
/// and executing an `INGEST`-only batch allocates nothing.
#[derive(Default)]
pub struct BatchScratch {
    /// Shared item arena; `ParsedRequest::Ingest` ranges index into it.
    items: Vec<ItemId>,
    /// Parse result per member (`Err` carries the `ERR` message).
    parsed: Vec<Result<ParsedRequest, String>>,
    /// Outcome per member, parallel to `parsed`.
    outcomes: Vec<MemberOutcome>,
    /// Reusable canonical op line for WAL appends.
    op_line: String,
    /// Reusable sorted+deduplicated items for one apply.
    apply_items: Vec<ItemId>,
}

impl BatchScratch {
    /// Fresh scratch (buffers grow to steady-state over the first frames).
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    /// Reset for a new frame, keeping capacities.
    fn begin(&mut self) {
        self.items.clear();
        self.parsed.clear();
        self.outcomes.clear();
    }

    /// Per-member outcomes of the last executed batch, in member order.
    pub fn outcomes(&self) -> &[MemberOutcome] {
        &self.outcomes
    }
}

/// The transport-independent scoring server core. See the module docs.
pub struct Engine {
    monitor: ShardedMonitor,
    snapshot_path: Option<PathBuf>,
    durable: Option<Mutex<Durable>>,
    storage: Arc<dyn Storage>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl Engine {
    /// Open an engine over the real filesystem and clock.
    pub fn open(
        monitor: ShardedMonitor,
        snapshot_path: Option<PathBuf>,
        durability: Option<&DurabilityConfig>,
        next_seq: u64,
    ) -> std::io::Result<Engine> {
        Engine::open_in(
            monitor,
            snapshot_path,
            durability,
            next_seq,
            RealStorage::shared(),
            Arc::new(RealClock),
        )
    }

    /// [`open`](Engine::open) against explicit environment seams — what
    /// the simulator calls with its in-memory storage and logical clock.
    pub fn open_in(
        monitor: ShardedMonitor,
        snapshot_path: Option<PathBuf>,
        durability: Option<&DurabilityConfig>,
        next_seq: u64,
        storage: Arc<dyn Storage>,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<Engine> {
        let durable = match durability {
            Some(dcfg) => {
                storage.create_dir_all(&dcfg.wal_dir)?;
                let wal = Wal::open_in(
                    Arc::clone(&storage),
                    &dcfg.wal_dir.join(WAL_FILE),
                    dcfg.sync_policy,
                    next_seq,
                    dcfg.fault_plan.clone().unwrap_or_default(),
                )?;
                Some(Mutex::new(Durable {
                    wal,
                    dir: dcfg.wal_dir.clone(),
                    storage: Arc::clone(&storage),
                    clock: Arc::clone(&clock),
                    checkpoint_every_requests: dcfg.checkpoint_every_requests,
                    checkpoint_every: dcfg.checkpoint_every,
                    keep_checkpoints: dcfg.keep_checkpoints.max(1),
                    checkpoint_format: dcfg.checkpoint_format,
                    since_checkpoint: 0,
                    last_checkpoint: clock.now(),
                    checkpoints_written: 0,
                }))
            }
            None => None,
        };
        Ok(Engine {
            monitor,
            snapshot_path,
            durable,
            storage,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The sharded monitor (read access for summaries and tests).
    pub fn monitor(&self) -> &ShardedMonitor {
        &self.monitor
    }

    /// Customers tracked right now.
    pub fn num_customers(&self) -> usize {
        self.monitor.num_customers()
    }

    /// Requests executed (including ones answered `ERR`).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered `ERR`.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Ask the engine to drain: connection loops (and the simulator)
    /// poll this and stop issuing requests.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested (via `SHUTDOWN` or
    /// [`request_shutdown`](Engine::request_shutdown)).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The sequence number of the last WAL-logged request (0 when
    /// nothing was logged or durability is off). The simulator reads
    /// this around [`respond`](Engine::respond) to learn which LSN an
    /// acknowledged mutation was logged at.
    pub fn wal_last_seq(&self) -> u64 {
        match &self.durable {
            Some(durable) => lock_durable(durable).wal.last_seq(),
            None => 0,
        }
    }

    /// The WAL's durability floor (see [`Wal::synced_seq`]): the highest
    /// sequence number recovery is *guaranteed* to reach after a crash
    /// at this instant. 0 when durability is off.
    ///
    /// [`Wal::synced_seq`]: crate::wal::Wal::synced_seq
    pub fn wal_synced_seq(&self) -> u64 {
        match &self.durable {
            Some(durable) => lock_durable(durable).wal.synced_seq(),
            None => 0,
        }
    }

    /// Whether the WAL has entered its fault-injected crashed state
    /// (every further append, sync and checkpoint fails). The
    /// deterministic simulator polls this after a batch to detect a
    /// mid-commit crash fault and restart the world; `false` when
    /// durability is off.
    pub fn wal_crashed(&self) -> bool {
        match &self.durable {
            Some(durable) => lock_durable(durable).wal.crashed(),
            None => false,
        }
    }

    /// Fsync the WAL now, regardless of sync policy (no-op when nothing
    /// is pending or durability is off). After this returns `Ok`, every
    /// appended record is durable — [`wal_synced_seq`](Engine::wal_synced_seq)
    /// equals [`wal_last_seq`](Engine::wal_last_seq). Replica promotion
    /// calls this so the takeover LSN is a durable one.
    pub fn sync_wal(&self) -> std::io::Result<()> {
        match &self.durable {
            Some(durable) => lock_durable(durable).wal.sync(),
            None => Ok(()),
        }
    }

    /// Run a mutating request through the WAL (when durability is on)
    /// and apply it, under one lock — append first, apply second, ack
    /// last. An append failure means nothing was applied and the client
    /// gets `ERR`.
    fn logged<R>(&self, op: &str, apply: impl FnOnce() -> R) -> Result<R, String> {
        let Some(durable) = &self.durable else {
            return Ok(apply());
        };
        let mut d = lock_durable(durable);
        if let Err(e) = d.wal.append(op) {
            attrition_obs::counter("serve.wal.errors").inc();
            return Err(format!("wal append failed: {e}"));
        }
        let result = apply();
        d.after_logged(&self.monitor);
        Ok(result)
    }

    /// Write the legacy single-file snapshot to the configured path,
    /// atomically (tmp + fsync + rename). `Ok(None)` when no path is
    /// set; errors are counted on `serve.snapshot.errors` and
    /// propagated, never swallowed.
    pub fn write_snapshot(&self) -> std::io::Result<Option<PathBuf>> {
        let Some(path) = &self.snapshot_path else {
            return Ok(None);
        };
        if let Err(e) =
            checkpoint::atomic_write_in(&*self.storage, path, self.monitor.snapshot().as_bytes())
        {
            attrition_obs::counter("serve.snapshot.errors").inc();
            return Err(e);
        }
        Ok(Some(path.clone()))
    }

    /// The shutdown epilogue: final checkpoint (durably, or the error is
    /// surfaced — never swallowed) and legacy snapshot, plus the WAL
    /// lifetime counters for the summary.
    pub fn shutdown_flush(&self) -> ShutdownReport {
        let mut report = ShutdownReport::default();
        if let Some(durable) = &self.durable {
            let mut d = lock_durable(durable);
            if let Err(e) = d.checkpoint_now(&self.monitor) {
                attrition_obs::counter("serve.checkpoint.errors").inc();
                eprintln!("serve: shutdown checkpoint failed (wal retained): {e}");
                report.checkpoint_error = Some(e.to_string());
            }
            report.wal_appends = d.wal.appends();
            report.wal_fsyncs = d.wal.fsyncs();
            report.checkpoints = d.checkpoints_written;
        }
        match self.write_snapshot() {
            Ok(path) => report.snapshot_path = path,
            Err(e) => {
                eprintln!("serve: shutdown snapshot failed: {e}");
                report.snapshot_error = Some(e.to_string());
            }
        }
        report
    }

    /// Execute one request; returns `(verb, response)` where the
    /// response may span multiple lines (`OK <n>` + `CLOSED` lines) but
    /// never ends with a newline (the caller appends the final one).
    pub fn respond(&self, line: &str) -> (&'static str, String) {
        let (verb, response) = self.respond_inner(line);
        self.requests.fetch_add(1, Ordering::Relaxed);
        attrition_obs::counter("serve.requests").inc();
        if response.starts_with("ERR") {
            self.errors.fetch_add(1, Ordering::Relaxed);
            attrition_obs::counter("serve.errors").inc();
        }
        (verb, response)
    }

    fn respond_inner(&self, line: &str) -> (&'static str, String) {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(ParseError(message)) => return ("parse", format!("ERR {message}")),
        };
        let verb = request.verb();
        let response = match request {
            Request::Ping => "PONG".to_owned(),
            Request::Ingest(customer, date, items) => {
                // Canonical op line, rebuilt (not echoed) so the WAL
                // holds exactly what `Request::parse` will re-read at
                // recovery.
                let op = Request::Ingest(customer, date, items.clone()).to_line();
                let basket = attrition_types::Basket::new(items);
                match self.logged(&op, || self.monitor.ingest(customer, date, &basket)) {
                    Ok(Ok(closed)) => closed_response(&closed),
                    Ok(Err(out_of_order)) => format!("ERR {out_of_order}"),
                    Err(wal_error) => format!("ERR {wal_error}"),
                }
            }
            Request::Score(customer) => match self.monitor.preview(customer) {
                Some(point) => format_score(customer, &point),
                None => format!("ERR unknown customer {}", customer.raw()),
            },
            Request::Flush(date) => {
                match self.logged(&format!("FLUSH {date}"), || self.monitor.flush_until(date)) {
                    Ok(closed) => closed_response(&closed),
                    Err(wal_error) => format!("ERR {wal_error}"),
                }
            }
            Request::Snapshot => match self.write_snapshot() {
                Ok(Some(path)) => {
                    let bytes = self.storage.len(&path).unwrap_or(0);
                    format!("OK {bytes} {}", path.display())
                }
                Ok(None) => "ERR no snapshot path configured".to_owned(),
                Err(e) => format!("ERR snapshot failed: {e}"),
            },
            Request::Stats => {
                for (shard, customers) in self.monitor.customers_per_shard().iter().enumerate() {
                    attrition_obs::gauge(&format!("serve.shard.{shard}.customers"))
                        .set(*customers as i64);
                }
                format!("STATS {}", attrition_obs::global().snapshot().to_json())
            }
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                "OK draining".to_owned()
            }
        };
        (verb, response)
    }

    /// Execute one batch frame. Parses every member into `scratch`'s
    /// shared arena, appends all mutating members to the WAL and
    /// group-commits them with **one** fsync (policy permitting), then
    /// applies and answers each member in order — so no member is acked
    /// before the whole group is as durable as the sync policy promises.
    ///
    /// Writes the full frame body into `out`: `OKBATCH <n>` plus one
    /// (possibly multi-line) member response per member, `'\n'`-joined,
    /// no trailing newline (the transport appends it). Member responses
    /// are byte-identical to what [`respond`](Engine::respond) would
    /// have produced for the same lines sent unbatched.
    pub fn respond_batch(
        &self,
        batch: &dyn BatchLines,
        scratch: &mut BatchScratch,
        out: &mut String,
    ) {
        let n = batch.len();
        if attrition_obs::enabled() {
            attrition_obs::global()
                .histogram("serve.batch.size")
                .observe(n as f64);
        }
        scratch.begin();
        let BatchScratch {
            items,
            parsed,
            outcomes,
            op_line,
            apply_items,
        } = scratch;
        for i in 0..n {
            parsed.push(Request::parse_into(batch.line(i), items).map_err(|ParseError(m)| m));
            outcomes.push(MemberOutcome::default());
        }
        let _ = write!(out, "OKBATCH {n}");
        let mut errors = 0u64;
        match &self.durable {
            Some(durable) => {
                let mut d = lock_durable(durable);
                // Log phase: append every mutating member, defer the sync.
                let mut logged = 0u64;
                for (parse, outcome) in parsed.iter_mut().zip(outcomes.iter_mut()) {
                    let Ok(request) = parse else { continue };
                    op_line.clear();
                    match request {
                        ParsedRequest::Ingest(customer, date, range) => {
                            write_ingest_line(op_line, *customer, *date, &items[range.clone()]);
                        }
                        ParsedRequest::Flush(date) => write_flush_line(op_line, *date),
                        _ => continue, // read-only: nothing to log
                    }
                    match d.wal.append_deferred(op_line) {
                        Ok(seq) => {
                            outcome.seq = seq;
                            outcome.logged = true;
                            logged += 1;
                        }
                        Err(e) => {
                            attrition_obs::counter("serve.wal.errors").inc();
                            *parse = Err(format!("wal append failed: {e}"));
                        }
                    }
                }
                // One group commit covering every append above.
                if let Err(e) = d.wal.commit() {
                    attrition_obs::counter("serve.wal.errors").inc();
                    for (parse, outcome) in parsed.iter_mut().zip(outcomes.iter()) {
                        if outcome.logged {
                            // In the file but not durable: recovery may
                            // replay the record, but the client sees ERR
                            // and the live monitor must not apply it —
                            // the single-op sync-failure semantics.
                            *parse = Err(format!("wal commit failed: {e}"));
                        }
                    }
                }
                // Apply phase, still under the lock so log order equals
                // apply order and a checkpoint cannot cut mid-batch.
                for (parse, outcome) in parsed.iter().zip(outcomes.iter_mut()) {
                    out.push('\n');
                    let at = out.len();
                    self.member_response(parse, outcome, items, apply_items, out);
                    if out[at..].starts_with("ERR") {
                        errors += 1;
                    }
                }
                d.after_logged_n(&self.monitor, logged);
            }
            None => {
                for (parse, outcome) in parsed.iter().zip(outcomes.iter_mut()) {
                    out.push('\n');
                    let at = out.len();
                    self.member_response(parse, outcome, items, apply_items, out);
                    if out[at..].starts_with("ERR") {
                        errors += 1;
                    }
                }
            }
        }
        self.requests.fetch_add(n as u64, Ordering::Relaxed);
        attrition_obs::counter("serve.requests").add(n as u64);
        if errors > 0 {
            self.errors.fetch_add(errors, Ordering::Relaxed);
            attrition_obs::counter("serve.errors").add(errors);
        }
    }

    /// Apply (when applicable) and answer one batch member, appending
    /// the response to `out`. Mutating members reaching this point were
    /// either logged *and* group-committed, or durability is off; a
    /// member whose append or commit failed arrives as `Err` and is
    /// answered without touching the monitor.
    fn member_response(
        &self,
        parse: &Result<ParsedRequest, String>,
        outcome: &mut MemberOutcome,
        items: &[ItemId],
        apply_items: &mut Vec<ItemId>,
        out: &mut String,
    ) {
        let request = match parse {
            Ok(request) => request,
            Err(message) => {
                let _ = write!(out, "ERR {message}");
                return;
            }
        };
        match request {
            ParsedRequest::Ping => out.push_str("PONG"),
            ParsedRequest::Ingest(customer, date, range) => {
                // Same canonicalization `Basket::new` performs, without
                // the allocation: the arena slice is wire-order.
                apply_items.clear();
                apply_items.extend_from_slice(&items[range.clone()]);
                apply_items.sort_unstable();
                apply_items.dedup();
                match self.monitor.ingest_sorted(*customer, *date, apply_items) {
                    Ok(closed) => {
                        outcome.applied = true;
                        write_closed_response(out, &closed);
                    }
                    Err(out_of_order) => {
                        let _ = write!(out, "ERR {out_of_order}");
                    }
                }
            }
            ParsedRequest::Score(customer) => match self.monitor.preview(*customer) {
                Some(point) => format_score_into(out, *customer, &point),
                None => {
                    let _ = write!(out, "ERR unknown customer {}", customer.raw());
                }
            },
            ParsedRequest::Flush(date) => {
                let closed = self.monitor.flush_until(*date);
                outcome.applied = true;
                write_closed_response(out, &closed);
            }
            ParsedRequest::Snapshot => match self.write_snapshot() {
                Ok(Some(path)) => {
                    let bytes = self.storage.len(&path).unwrap_or(0);
                    let _ = write!(out, "OK {bytes} {}", path.display());
                }
                Ok(None) => out.push_str("ERR no snapshot path configured"),
                Err(e) => {
                    let _ = write!(out, "ERR snapshot failed: {e}");
                }
            },
            ParsedRequest::Stats => {
                for (shard, customers) in self.monitor.customers_per_shard().iter().enumerate() {
                    attrition_obs::gauge(&format!("serve.shard.{shard}.customers"))
                        .set(*customers as i64);
                }
                let _ = write!(
                    out,
                    "STATS {}",
                    attrition_obs::global().snapshot().to_json()
                );
            }
            ParsedRequest::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                out.push_str("OK draining");
            }
        }
    }
}

/// [`closed_response`] writing into an existing buffer (the batch path).
fn write_closed_response(out: &mut String, closed: &[WindowClosed]) {
    let _ = write!(out, "OK {}", closed.len());
    for window in closed {
        out.push('\n');
        format_closed_into(out, window);
    }
}

fn closed_response(closed: &[WindowClosed]) -> String {
    let mut out = format!("OK {}", closed.len());
    for window in closed {
        out.push('\n');
        out.push_str(&format_closed(window));
    }
    out
}
