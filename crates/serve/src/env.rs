//! The environment seams: `Clock`, `RngCore`, and `Storage`.
//!
//! Everything in the serving + durability stack that talks to the
//! outside world — wall-clock time, randomness, and the filesystem —
//! goes through one of these three traits instead of calling
//! `std::time`/`std::fs` directly. Production wires in the thin real
//! implementations below ([`RealClock`], [`SplitMix64`],
//! [`RealStorage`]); the deterministic simulator (`attrition-sim`)
//! wires in in-memory implementations driven by a seeded logical clock
//! and event queue, so the *same* engine/WAL/checkpoint/recovery code
//! runs under thousands of reproducible fault interleavings (DESIGN
//! §11).
//!
//! The traits are object-safe on purpose: the stack passes
//! `Arc<dyn Storage>`/`Arc<dyn Clock>` around rather than infecting
//! every type with generics, and the indirection costs one vtable call
//! per I/O operation — noise next to the syscall (or, in the simulator,
//! next to the frame CRC).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Monotonic time. Real servers measure durations with [`Instant`];
/// the simulator advances a logical clock between events, so a "30 s"
/// checkpoint interval elapses deterministically.
pub trait Clock: Send + Sync {
    /// Monotonic time since an arbitrary fixed epoch (process start for
    /// the real clock, simulation start for the logical one).
    fn now(&self) -> Duration;

    /// Block for `duration` (real) or advance the logical clock by it
    /// (sim). Used by client backoff, never by the server hot path.
    fn sleep(&self, duration: Duration);
}

/// [`Clock`] over [`Instant`], anchored at first use.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

static REAL_EPOCH: OnceLock<Instant> = OnceLock::new();

impl Clock for RealClock {
    fn now(&self) -> Duration {
        REAL_EPOCH.get_or_init(Instant::now).elapsed()
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// A deterministic `u64` stream. The serve stack never needs
/// cryptographic randomness — only decorrelation (retry jitter, fault
/// schedules) — so the contract is just "uniform-ish and replayable
/// from a seed".
pub trait RngCore: Send {
    /// The next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// splitmix64 (public domain): the minimal statistically-decent PRNG,
/// and the one canonical `RngCore` both production (client jitter) and
/// the simulator use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// A stream seeded at `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// A value below `bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Bernoulli draw at `per_mille`/1000 (values ≥ 1000 always hit).
    pub fn per_mille(&mut self, per_mille: u32) -> bool {
        (self.next_u64() % 1000) < per_mille as u64
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One request/response exchange with a scoring server, from the
/// client's side. The real implementation is the TCP
/// [`Client`](crate::client::Client) (one newline-delimited request,
/// one possibly multi-line response); the simulator's implementation
/// routes the line through its event queue into the
/// [`Engine`](crate::engine::Engine) directly, drawing seeded message
/// faults (drop/duplicate/delay) on the way.
pub trait Transport {
    /// Send one request line (no trailing newline) and return the full
    /// response text (multi-line responses joined with `\n`, no
    /// trailing newline). An `Err` means the message or its response
    /// was lost — the caller cannot know whether the server executed
    /// the request.
    fn exchange(&mut self, line: &str) -> io::Result<String>;
}

/// The filesystem operations the WAL, checkpoints and recovery need —
/// expressed by path so the trait stays object-safe. The semantics
/// mirror POSIX closely enough that the simulator can model the crash
/// behaviors that matter: unsynced bytes may be lost or torn, and
/// renames/creates are only durable after [`sync_dir`](Storage::sync_dir).
pub trait Storage: Send + Sync {
    /// Read the whole file. A missing file is `ErrorKind::NotFound`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Create-or-truncate `path` and write `bytes` (not atomic — pair
    /// with [`rename`](Storage::rename) for atomic replacement).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Append `bytes` to `path`, creating it if missing. May write a
    /// prefix and then fail (a torn write) — callers must roll back or
    /// tolerate it.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Make `path`'s current content durable (`fsync`).
    fn sync(&self, path: &Path) -> io::Result<()>;

    /// Truncate (or extend with zeros) `path` to `len` bytes.
    fn set_len(&self, path: &Path, len: u64) -> io::Result<u64>;

    /// Current length of `path` in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;

    /// Atomically move `from` over `to` (replacing it). Durable only
    /// after the containing directory is synced.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file. Durable only after the directory is synced.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Make the directory's entries (renames/creates/removes) durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// File names (not full paths) inside `dir`. A missing directory
    /// lists as empty. Order is unspecified; callers sort.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Create `dir` and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// [`Storage`] over `std::fs`. Append handles are cached per path so a
/// hot WAL does not reopen its log on every record; the cache is
/// invalidated by [`set_len`](Storage::set_len)/[`rename`](Storage::rename)
/// only where required (append-mode writes always land at the current
/// end of file, so truncation does not stale the handle).
#[derive(Debug, Default)]
pub struct RealStorage {
    appenders: Mutex<std::collections::HashMap<PathBuf, std::fs::File>>,
}

impl RealStorage {
    /// A fresh handle cache over the real filesystem.
    pub fn new() -> RealStorage {
        RealStorage::default()
    }

    /// The shared process-wide instance (what the path-based
    /// convenience constructors use).
    pub fn shared() -> std::sync::Arc<RealStorage> {
        static SHARED: OnceLock<std::sync::Arc<RealStorage>> = OnceLock::new();
        SHARED
            .get_or_init(|| std::sync::Arc::new(RealStorage::new()))
            .clone()
    }

    fn with_appender<R>(
        &self,
        path: &Path,
        op: impl FnOnce(&mut std::fs::File) -> io::Result<R>,
    ) -> io::Result<R> {
        let mut cache = self
            .appenders
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if !cache.contains_key(path) {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            cache.insert(path.to_owned(), file);
        }
        let file = cache.get_mut(path).expect("just inserted");
        let result = op(file);
        if result.is_err() {
            // A failed handle is not trustworthy; reopen next time.
            cache.remove(path);
        }
        result
    }

    fn drop_appender(&self, path: &Path) {
        self.appenders
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .remove(path);
    }
}

impl Storage for RealStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.drop_appender(path);
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        self.with_appender(path, |file| file.write_all(bytes))
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        self.with_appender(path, |file| file.sync_data())
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<u64> {
        // Not via the append handle: set_len is also used on files
        // nobody appends to (torn-tail truncation during recovery).
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_all()?;
        Ok(len)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.drop_appender(from);
        self.drop_appender(to);
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.drop_appender(path);
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Not every platform can open a directory for syncing; degrade
        // to success there (the POSIX targets we care about can).
        match std::fs::File::open(dir) {
            Ok(file) => file.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut names = Vec::new();
        for entry in entries {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        Ok(names)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let clock = RealClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SplitMix64::new(43);
        assert_ne!(xs, (0..16).map(|_| c.next_u64()).collect::<Vec<u64>>());
        // per_mille extremes.
        let mut r = SplitMix64::new(7);
        assert!((0..100).all(|_| !r.per_mille(0)));
        assert!((0..100).all(|_| r.per_mille(1000)));
    }

    #[test]
    fn real_storage_roundtrips_and_lists() {
        let dir = std::env::temp_dir().join(format!("attrition_env_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let storage = RealStorage::new();
        storage.create_dir_all(&dir).unwrap();
        let path = dir.join("a.log");
        storage.append(&path, b"hello ").unwrap();
        storage.append(&path, b"world").unwrap();
        storage.sync(&path).unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"hello world");
        assert_eq!(storage.len(&path).unwrap(), 11);
        storage.set_len(&path, 5).unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"hello");
        // Append after truncation lands at the new end.
        storage.append(&path, b"!").unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"hello!");
        storage.write(&dir.join("b.tmp"), b"x").unwrap();
        storage
            .rename(&dir.join("b.tmp"), &dir.join("b.ckpt"))
            .unwrap();
        storage.sync_dir(&dir).unwrap();
        let mut names = storage.list(&dir).unwrap();
        names.sort();
        assert_eq!(names, vec!["a.log", "b.ckpt"]);
        storage.remove(&dir.join("b.ckpt")).unwrap();
        assert!(matches!(
            storage.read(&dir.join("b.ckpt")),
            Err(e) if e.kind() == io::ErrorKind::NotFound
        ));
        assert_eq!(
            storage.list(Path::new("/nonexistent/attrition")).unwrap(),
            Vec::<String>::new()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
