//! In-process fault injection for the durability layer.
//!
//! A [`FaultPlan`] is handed to the [`Wal`](crate::wal::Wal) (directly,
//! or through
//! [`DurabilityConfig::fault_plan`](crate::server::DurabilityConfig))
//! and deterministically breaks it at a chosen point:
//!
//! - **fail the Nth append** — the write returns an injected I/O error
//!   and nothing reaches the file, exercising the server's
//!   "no ack without a logged record" path;
//! - **crash after the Nth append** — the log freezes exactly as a
//!   `SIGKILL` would leave it (every later append, sync and checkpoint
//!   fails), so a test can drop the server and recover from the files;
//! - **tear the tail at the crash** — additionally chops `torn_tail_bytes`
//!   off the end of the file, simulating a torn final write that the
//!   CRC framing must detect and truncate during recovery.
//!
//! The plan lives in the production types rather than behind a `cfg`
//! gate so integration tests (and future chaos tooling) can drive it
//! against a real listening server; a default plan injects nothing.
//!
//! ## Seed-driven schedules
//!
//! Beyond the three deterministic one-shots above, a plan carries a
//! `seed` and a set of per-mille *rates* that turn it into a stochastic
//! schedule: every consumer (the WAL for disk faults, the simulator's
//! transport for network faults, the simulator's driver for
//! crash-restarts) derives its own [`SplitMix64`] stream from the seed,
//! so one `u64` reproduces the entire fault interleaving bit-for-bit.
//! The rates cover the failure modes the deterministic crash tests
//! cannot enumerate: clean append failures, torn (partial) appends,
//! message drop/duplicate/delay (reordering falls out of random
//! delays), and crash-restart at arbitrary event boundaries.
//!
//! [`SplitMix64`]: crate::env::SplitMix64

use crate::env::SplitMix64;

/// Deterministic failure schedule for one WAL instance (the `fail_*` /
/// `crash_*` one-shots) plus a seed-driven stochastic schedule shared
/// with the simulator (the `*_per_mille` rates).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail this append (1-based count of append *attempts*) with an
    /// injected error, writing nothing. Later appends succeed again.
    pub fail_append: Option<u64>,
    /// After this many *successful* appends, simulate process death:
    /// the WAL enters a crashed state where every subsequent append,
    /// sync and checkpoint returns an error.
    pub crash_after_appends: Option<u64>,
    /// At the simulated crash, truncate this many bytes off the end of
    /// the log file — a torn final write for recovery to detect.
    pub torn_tail_bytes: u64,
    /// Seed of the stochastic schedule below (ignored when every rate
    /// is zero).
    pub seed: u64,
    /// Rate (per 1000 appends) of clean injected append failures:
    /// nothing reaches the file, the caller sees an error.
    pub fail_append_per_mille: u32,
    /// Rate (per 1000 appends) of *torn* appends: a random prefix of
    /// the frame reaches the file before the error — the WAL must roll
    /// it back or poison itself.
    pub torn_append_per_mille: u32,
    /// Rate (per 1000 messages) of message drops on the simulated
    /// transport, either direction.
    pub drop_per_mille: u32,
    /// Rate (per 1000 messages) of message duplication on the simulated
    /// transport.
    pub dup_per_mille: u32,
    /// Rate (per 1000 messages) of extra delivery delay (which is also
    /// what reorders messages relative to each other).
    pub delay_per_mille: u32,
    /// Rate (per 1000 client operations) of a crash-restart of the
    /// whole server at that event boundary (simulator only).
    pub crash_per_mille: u32,
    /// Rate (per 1000 group commits with records pending) of process
    /// death *between* a batch's appends and its group-commit fsync —
    /// the window where a whole batch is in the file but none of it is
    /// durable and none of it was acked.
    pub crash_commit_per_mille: u32,
}

impl FaultPlan {
    /// A plan that injects nothing (what production runs use implicitly).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fail the `n`th append attempt (1-based) with an injected error.
    pub fn fail_append(n: u64) -> FaultPlan {
        FaultPlan {
            fail_append: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Crash (freeze the log) after `n` successful appends.
    pub fn crash_after(n: u64) -> FaultPlan {
        FaultPlan {
            crash_after_appends: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Crash after `n` successful appends, tearing the final `bytes`
    /// bytes off the file.
    pub fn crash_after_torn(n: u64, bytes: u64) -> FaultPlan {
        FaultPlan {
            crash_after_appends: Some(n),
            torn_tail_bytes: bytes,
            ..FaultPlan::default()
        }
    }

    /// A stochastic schedule from a single seed with moderate default
    /// rates for every fault class — the simulator's bread and butter.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fail_append_per_mille: 20,
            torn_append_per_mille: 20,
            drop_per_mille: 30,
            dup_per_mille: 20,
            delay_per_mille: 100,
            crash_per_mille: 15,
            crash_commit_per_mille: 12,
            ..FaultPlan::default()
        }
    }

    /// True when any stochastic rate is set (consumers can skip rng
    /// draws entirely for all-zero plans, keeping the deterministic
    /// one-shot paths byte-for-byte identical to before).
    pub fn is_stochastic(&self) -> bool {
        self.fail_append_per_mille != 0
            || self.torn_append_per_mille != 0
            || self.drop_per_mille != 0
            || self.dup_per_mille != 0
            || self.delay_per_mille != 0
            || self.crash_per_mille != 0
            || self.crash_commit_per_mille != 0
    }

    /// Draw: should this append fail cleanly (nothing written)?
    pub fn failed_append(&self, rng: &mut SplitMix64) -> bool {
        self.fail_append_per_mille != 0 && rng.per_mille(self.fail_append_per_mille)
    }

    /// Draw: should this append tear (partial frame written, then error)?
    pub fn torn_append(&self, rng: &mut SplitMix64) -> bool {
        self.torn_append_per_mille != 0 && rng.per_mille(self.torn_append_per_mille)
    }

    /// Draw: should the transport drop this message?
    pub fn drop_message(&self, rng: &mut SplitMix64) -> bool {
        self.drop_per_mille != 0 && rng.per_mille(self.drop_per_mille)
    }

    /// Draw: should the transport duplicate this message?
    pub fn duplicate_message(&self, rng: &mut SplitMix64) -> bool {
        self.dup_per_mille != 0 && rng.per_mille(self.dup_per_mille)
    }

    /// Draw: should the transport add extra delay to this message?
    pub fn delay_message(&self, rng: &mut SplitMix64) -> bool {
        self.delay_per_mille != 0 && rng.per_mille(self.delay_per_mille)
    }

    /// Draw: should the server crash-restart at this event boundary?
    pub fn crash_now(&self, rng: &mut SplitMix64) -> bool {
        self.crash_per_mille != 0 && rng.per_mille(self.crash_per_mille)
    }

    /// Draw: should the process die between a group's appends and its
    /// group-commit fsync?
    pub fn crash_mid_commit(&self, rng: &mut SplitMix64) -> bool {
        self.crash_commit_per_mille != 0 && rng.per_mille(self.crash_commit_per_mille)
    }
}

/// The error kind used for every injected failure, so tests (and error
/// messages) can tell scheduled faults from real I/O problems.
pub fn injected_error(what: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {what}"))
}
