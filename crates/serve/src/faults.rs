//! In-process fault injection for the durability layer.
//!
//! A [`FaultPlan`] is handed to the [`Wal`](crate::wal::Wal) (directly,
//! or through
//! [`DurabilityConfig::fault_plan`](crate::server::DurabilityConfig))
//! and deterministically breaks it at a chosen point:
//!
//! - **fail the Nth append** — the write returns an injected I/O error
//!   and nothing reaches the file, exercising the server's
//!   "no ack without a logged record" path;
//! - **crash after the Nth append** — the log freezes exactly as a
//!   `SIGKILL` would leave it (every later append, sync and checkpoint
//!   fails), so a test can drop the server and recover from the files;
//! - **tear the tail at the crash** — additionally chops `torn_tail_bytes`
//!   off the end of the file, simulating a torn final write that the
//!   CRC framing must detect and truncate during recovery.
//!
//! The plan lives in the production types rather than behind a `cfg`
//! gate so integration tests (and future chaos tooling) can drive it
//! against a real listening server; a default plan injects nothing.

/// Deterministic failure schedule for one WAL instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail this append (1-based count of append *attempts*) with an
    /// injected error, writing nothing. Later appends succeed again.
    pub fail_append: Option<u64>,
    /// After this many *successful* appends, simulate process death:
    /// the WAL enters a crashed state where every subsequent append,
    /// sync and checkpoint returns an error.
    pub crash_after_appends: Option<u64>,
    /// At the simulated crash, truncate this many bytes off the end of
    /// the log file — a torn final write for recovery to detect.
    pub torn_tail_bytes: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (what production runs use implicitly).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fail the `n`th append attempt (1-based) with an injected error.
    pub fn fail_append(n: u64) -> FaultPlan {
        FaultPlan {
            fail_append: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Crash (freeze the log) after `n` successful appends.
    pub fn crash_after(n: u64) -> FaultPlan {
        FaultPlan {
            crash_after_appends: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Crash after `n` successful appends, tearing the final `bytes`
    /// bytes off the file.
    pub fn crash_after_torn(n: u64, bytes: u64) -> FaultPlan {
        FaultPlan {
            crash_after_appends: Some(n),
            torn_tail_bytes: bytes,
            ..FaultPlan::default()
        }
    }
}

/// The error kind used for every injected failure, so tests (and error
/// messages) can tell scheduled faults from real I/O problems.
pub fn injected_error(what: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {what}"))
}
