//! # attrition-serve
//!
//! The online deployment mode of the stability model: a std-only TCP
//! server that keeps per-customer [`StabilityMonitor`] state *live* and
//! scores windows as receipts arrive — the paper's `Stability_i^k ≤ β`
//! detector as a continuously-served signal instead of a batch job.
//!
//! Three layers, bottom up:
//!
//! - [`shard`] — customers hash-routed across N independent monitors,
//!   each behind its own lock, so ingest never takes a global lock and
//!   scoring stays bit-identical to a single monitor.
//! - [`pool`] — a fixed worker pool with a *bounded* queue: saturation
//!   answers `ERR busy` immediately (fail-fast backpressure) instead of
//!   buffering unboundedly.
//! - [`server`] — the accept loop, the newline-delimited [`protocol`],
//!   per-connection read timeouts, `attrition-obs` wiring, and graceful
//!   shutdown (`SHUTDOWN`/SIGINT drains in-flight requests and writes a
//!   restorable checkpoint).
//!
//! The durability layer sits beside them (see DESIGN §10 for the
//! contract):
//!
//! - [`wal`] — a length+CRC-framed write-ahead log of mutating requests;
//!   with a [`DurabilityConfig`] set, `INGEST`/`FLUSH` are acked only
//!   after their record is appended (and, under `--sync-policy always`,
//!   fsynced).
//! - [`checkpoint`] — crash-atomic, checksummed state snapshots
//!   (tmp + fsync + rename), rotated inside the WAL directory; a
//!   successful checkpoint truncates the WAL.
//! - [`recovery`] — startup restore: newest valid checkpoint (falling
//!   back past corrupt ones) + WAL replay, with torn-tail detection.
//! - [`faults`] — a deterministic [`FaultPlan`] the tests use to fail or
//!   "crash" the WAL mid-stream and prove recovery is bit-identical.
//!
//! [`client`] is the matching blocking client used by the load
//! generator and the tests; the protocol itself is plain enough for an
//! interactive `nc` session (see README's Serving section).
//!
//! ```no_run
//! use attrition_serve::server::{self, ServerConfig};
//! use attrition_core::StabilityParams;
//! use attrition_store::WindowSpec;
//! use attrition_types::Date;
//!
//! let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 2);
//! let config = ServerConfig::new("127.0.0.1:7711", spec, StabilityParams::PAPER);
//! let handle = server::start(config).unwrap();
//! println!("serving on {}", handle.local_addr());
//! let summary = handle.join(); // returns after SHUTDOWN / SIGINT
//! println!("served {} requests", summary.requests);
//! ```
//!
//! [`StabilityMonitor`]: attrition_core::StabilityMonitor

pub mod checkpoint;
pub mod client;
pub mod engine;
pub mod env;
pub mod faults;
pub mod pool;
pub mod protocol;
pub mod recovery;
pub mod server;
pub mod shard;
pub mod wal;

pub use checkpoint::CheckpointFormat;
pub use client::{Client, Pipeline, Reply, RetryPolicy, RetryStats};
pub use engine::{BatchScratch, Engine, MemberOutcome, ShutdownReport};
pub use env::{Clock, RealClock, RealStorage, RngCore, SplitMix64, Storage, Transport};
pub use faults::FaultPlan;
pub use pool::ThreadPool;
pub use protocol::{
    parse_batch_header, BatchLines, PackedLines, ParsedRequest, ParsedScore, Request, MAX_BATCH,
};
pub use recovery::{recover, Fallback, RecoveryError, RecoveryStats};
pub use server::{
    install_sigint_handler, start, start_resumed, start_service, start_with, DurabilityConfig,
    ServerConfig, ServerHandle, ServerSummary, Service,
};
pub use shard::{OutOfOrder, ShardedMonitor};
pub use wal::SyncPolicy;
