//! # attrition-serve
//!
//! The online deployment mode of the stability model: a std-only TCP
//! server that keeps per-customer [`StabilityMonitor`] state *live* and
//! scores windows as receipts arrive — the paper's `Stability_i^k ≤ β`
//! detector as a continuously-served signal instead of a batch job.
//!
//! Three layers, bottom up:
//!
//! - [`shard`] — customers hash-routed across N independent monitors,
//!   each behind its own lock, so ingest never takes a global lock and
//!   scoring stays bit-identical to a single monitor.
//! - [`pool`] — a fixed worker pool with a *bounded* queue: saturation
//!   answers `ERR busy` immediately (fail-fast backpressure) instead of
//!   buffering unboundedly.
//! - [`server`] — the accept loop, the newline-delimited [`protocol`],
//!   per-connection read timeouts, `attrition-obs` wiring, and graceful
//!   shutdown (`SHUTDOWN`/SIGINT drains in-flight requests and writes a
//!   restorable checkpoint).
//!
//! [`client`] is the matching blocking client used by the load
//! generator and the tests; the protocol itself is plain enough for an
//! interactive `nc` session (see README's Serving section).
//!
//! ```no_run
//! use attrition_serve::server::{self, ServerConfig};
//! use attrition_core::StabilityParams;
//! use attrition_store::WindowSpec;
//! use attrition_types::Date;
//!
//! let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 2);
//! let config = ServerConfig::new("127.0.0.1:7711", spec, StabilityParams::PAPER);
//! let handle = server::start(config).unwrap();
//! println!("serving on {}", handle.local_addr());
//! let summary = handle.join(); // returns after SHUTDOWN / SIGINT
//! println!("served {} requests", summary.requests);
//! ```
//!
//! [`StabilityMonitor`]: attrition_core::StabilityMonitor

pub mod client;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::{Client, Reply};
pub use pool::ThreadPool;
pub use protocol::{ParsedScore, Request};
pub use server::{
    install_sigint_handler, start, start_with, ServerConfig, ServerHandle, ServerSummary,
};
pub use shard::{OutOfOrder, ShardedMonitor};
