//! A fixed-size worker pool with a bounded job queue.
//!
//! The server's backpressure policy lives here: when every worker is
//! busy and the queue is at capacity, [`ThreadPool::try_execute`]
//! returns [`Busy`] *immediately* instead of buffering — the caller
//! (the accept loop) turns that into an `ERR busy` response and drops
//! the connection, so a traffic spike degrades into fast rejections
//! rather than unbounded memory growth and collapse.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool is saturated: all workers busy and the queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy;

impl std::fmt::Display for Busy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool saturated")
    }
}

impl std::error::Error for Busy {}

struct Shared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
    /// Jobs currently executing (not queued).
    running: AtomicUsize,
}

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

/// Fixed worker threads draining a bounded queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    capacity: usize,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// `workers` threads and a queue holding at most `capacity` waiting
    /// jobs (jobs being executed do not count against the capacity).
    pub fn new(workers: usize, capacity: usize) -> ThreadPool {
        assert!(workers > 0, "need at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            available: Condvar::new(),
            running: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker threads must spawn")
            })
            .collect();
        ThreadPool {
            shared,
            capacity,
            workers: handles,
        }
    }

    /// Whether the next [`try_execute`](ThreadPool::try_execute) would
    /// be rejected. With a single producer thread (the server's accept
    /// loop) this is exact, not advisory: workers only ever *shrink*
    /// the queue, so a non-saturated answer cannot be invalidated
    /// before the producer enqueues.
    pub fn is_saturated(&self) -> bool {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .jobs
            .len()
            >= self.capacity
    }

    /// Enqueue a job, or reject with [`Busy`] when the queue is full.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), Busy> {
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if queue.jobs.len() >= self.capacity {
            return Err(Busy);
        }
        queue.jobs.push_back(Box::new(job));
        let depth = queue.jobs.len();
        drop(queue);
        if attrition_obs::enabled() {
            attrition_obs::gauge("serve.pool.queue_depth").set(depth as i64);
        }
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.shared.running.load(Ordering::Relaxed)
    }

    /// Finish every queued and running job, then stop the workers.
    pub fn shutdown(mut self) {
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            queue.shutting_down = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // `shutdown` drains `workers`; a pool dropped without it still
        // stops its threads instead of leaking them.
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            queue.shutting_down = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutting_down {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        shared.running.fetch_add(1, Ordering::Relaxed);
        // A panicking job must not take the worker down with it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        shared.running.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_jobs_on_workers() {
        let pool = ThreadPool::new(4, 16);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            loop {
                let counter = Arc::clone(&counter);
                let queued = pool.try_execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
                if queued.is_ok() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn rejects_when_saturated() {
        let pool = ThreadPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.try_execute(move || {
            let _ = block_rx.recv();
        })
        .unwrap();
        // ...give it time to dequeue, then fill the queue slot.
        std::thread::sleep(Duration::from_millis(50));
        pool.try_execute(|| {}).unwrap();
        // The next job has nowhere to go.
        assert_eq!(pool.try_execute(|| {}), Err(Busy));
        block_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = ThreadPool::new(2, 64);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.try_execute(move || {
                std::thread::sleep(Duration::from_micros(100));
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    /// Deterministic saturation: with every worker gated and the queue
    /// full, *every* further submission is answered `Busy` — the
    /// rejection count exactly matches the rejected submissions, and
    /// the accepted ones all execute once the gate opens.
    #[test]
    fn saturated_pool_rejects_every_submission_exactly() {
        let pool = ThreadPool::new(2, 4);
        let executed = Arc::new(AtomicU64::new(0));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        let (started_tx, started_rx) = mpsc::channel::<()>();

        // Gate both workers...
        for _ in 0..2 {
            let gate = Arc::clone(&gate_rx);
            let started = started_tx.clone();
            let executed = Arc::clone(&executed);
            pool.try_execute(move || {
                started.send(()).unwrap();
                let _ = gate.lock().unwrap_or_else(|p| p.into_inner()).recv();
                executed.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        started_rx.recv().unwrap();
        started_rx.recv().unwrap();
        // ...fill the queue to capacity...
        for _ in 0..4 {
            let executed = Arc::clone(&executed);
            pool.try_execute(move || {
                executed.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        // ...and every one of the next 100 submissions must bounce.
        let mut rejected = 0u64;
        for _ in 0..100 {
            let executed = Arc::clone(&executed);
            if pool
                .try_execute(move || {
                    executed.fetch_add(1, Ordering::Relaxed);
                })
                .is_err()
            {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 100, "a saturated pool must reject fail-fast");

        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        pool.shutdown();
        // Exactly the 6 accepted jobs ran; none of the 100 rejected did.
        assert_eq!(executed.load(Ordering::Relaxed), 6);
    }

    /// Under producer contention nothing is lost or double-run: every
    /// submission is either accepted (and executes exactly once) or
    /// rejected with `Busy`, so accepted == executed after shutdown.
    #[test]
    fn accepted_submissions_all_execute_under_contention() {
        let pool = ThreadPool::new(1, 1);
        let executed = Arc::new(AtomicU64::new(0));
        let (accepted, rejected) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = &pool;
                    let executed = Arc::clone(&executed);
                    s.spawn(move || {
                        let (mut accepted, mut rejected) = (0u64, 0u64);
                        for _ in 0..200 {
                            let executed = Arc::clone(&executed);
                            match pool.try_execute(move || {
                                std::thread::sleep(Duration::from_micros(500));
                                executed.fetch_add(1, Ordering::Relaxed);
                            }) {
                                Ok(()) => accepted += 1,
                                Err(Busy) => rejected += 1,
                            }
                        }
                        (accepted, rejected)
                    })
                })
                .collect();
            handles.into_iter().fold((0, 0), |(a, r), h| {
                let (ha, hr) = h.join().expect("producer thread");
                (a + ha, r + hr)
            })
        });
        pool.shutdown();
        assert_eq!(
            accepted + rejected,
            800,
            "every submission is accounted for"
        );
        assert!(rejected > 0, "a 1-worker/1-slot pool must saturate");
        assert_eq!(
            executed.load(Ordering::Relaxed),
            accepted,
            "accepted jobs must execute exactly once, rejected ones never"
        );
    }

    /// `shutdown` must block until the job a worker is *currently
    /// executing* finishes — in-flight work is drained, not abandoned.
    #[test]
    fn shutdown_waits_for_the_in_flight_job() {
        let pool = ThreadPool::new(1, 8);
        let (started_tx, started_rx) = mpsc::channel();
        let done = Arc::new(AtomicU64::new(0));
        let flag = Arc::clone(&done);
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            std::thread::sleep(Duration::from_millis(150));
            flag.store(1, Ordering::Relaxed);
        })
        .unwrap();
        // The job is in flight (not queued) when shutdown starts.
        started_rx.recv().unwrap();
        pool.shutdown();
        assert_eq!(
            done.load(Ordering::Relaxed),
            1,
            "shutdown returned before the in-flight job completed"
        );
    }

    /// The saturation probe is exact for the server's single-producer
    /// accept loop: a `false` answer guarantees the next submission is
    /// accepted, a `true` answer that it would bounce.
    #[test]
    fn saturation_probe_is_exact_for_a_single_producer() {
        let pool = ThreadPool::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel();
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            let _ = gate_rx.recv();
        })
        .unwrap();
        // Worker occupied, queue empty: not saturated, and the promise
        // holds — the next submission is accepted.
        started_rx.recv().unwrap();
        assert!(!pool.is_saturated());
        pool.try_execute(|| {}).unwrap();
        // Queue full: saturated, and the next submission bounces.
        assert!(pool.is_saturated());
        assert_eq!(pool.try_execute(|| {}), Err(Busy));
        // Once the worker drains the queue the probe flips back, and a
        // `false` answer again guarantees acceptance.
        gate_tx.send(()).unwrap();
        while pool.is_saturated() {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.try_execute(|| {}).unwrap();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1, 8);
        pool.try_execute(|| panic!("job blew up")).unwrap();
        let done = Arc::new(AtomicU64::new(0));
        let flag = Arc::clone(&done);
        std::thread::sleep(Duration::from_millis(20));
        pool.try_execute(move || {
            flag.store(1, Ordering::Relaxed);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
