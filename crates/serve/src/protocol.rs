//! The wire protocol: newline-delimited ASCII requests and responses.
//!
//! Every request is one line, `VERB [ARGS...]`, fields separated by
//! single spaces; every response is one line, except responses that
//! carry closed windows, which announce a count (`OK <n>`) followed by
//! exactly `n` `CLOSED` lines — a client always knows how many lines to
//! read before issuing its next request.
//!
//! ```text
//! PING                                  → PONG
//! INGEST <customer> <date> [<item>...]  → OK <n> then n × CLOSED lines
//! SCORE <customer>                      → SCORE <customer> <window> <value> <present> <total>
//! FLUSH <date>                          → OK <n> then n × CLOSED lines
//! SNAPSHOT                              → OK <bytes> <path>
//! STATS                                 → STATS <one-line JSON metrics report>
//! SHUTDOWN                              → OK draining
//! anything else                         → ERR <reason>
//! ```
//!
//! `<date>` is ISO `YYYY-MM-DD`; `<customer>`/`<item>` are the raw
//! integer ids. A `CLOSED` line is
//!
//! ```text
//! CLOSED <customer> <window> <value> <present> <total> <lost>
//! ```
//!
//! where `<lost>` is `-` or comma-joined `item:share` pairs. Stability
//! values are printed with Rust's shortest-roundtrip `f64` formatting,
//! so parsing them back yields the bit-identical score the offline
//! batch pipeline computes.

use attrition_core::incremental::WindowClosed;
use attrition_core::StabilityPoint;
use attrition_types::{CustomerId, Date, ItemId};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One receipt: customer, purchase date, basket items.
    Ingest(CustomerId, Date, Vec<ItemId>),
    /// Live (not yet closed) stability of a customer's current window.
    Score(CustomerId),
    /// Close every customer's windows before the one containing the date.
    Flush(Date),
    /// Write a checkpoint of the full sharded state to the server's
    /// snapshot path.
    Snapshot,
    /// One-line JSON metrics report.
    Stats,
    /// Graceful shutdown: drain connections, checkpoint, exit.
    Shutdown,
}

/// A request line that could not be parsed; the message is sent back
/// verbatim after `ERR `.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl Request {
    /// Parse one request line (without its trailing newline).
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let mut fields = line.split_ascii_whitespace();
        let verb = fields
            .next()
            .ok_or_else(|| ParseError("empty request".into()))?;
        let req = match verb {
            "PING" => Request::Ping,
            "INGEST" => {
                let customer = parse_customer(fields.next())?;
                let date = parse_date(fields.next())?;
                let items = fields
                    .by_ref()
                    .map(|f| {
                        f.parse::<u32>()
                            .map(ItemId::new)
                            .map_err(|_| ParseError(format!("bad item id {f:?}")))
                    })
                    .collect::<Result<Vec<ItemId>, ParseError>>()?;
                Request::Ingest(customer, date, items)
            }
            "SCORE" => Request::Score(parse_customer(fields.next())?),
            "FLUSH" => Request::Flush(parse_date(fields.next())?),
            "SNAPSHOT" => Request::Snapshot,
            "STATS" => Request::Stats,
            "SHUTDOWN" => Request::Shutdown,
            other => {
                return Err(ParseError(format!(
                    "unknown verb {other:?} (expected PING, INGEST, SCORE, FLUSH, SNAPSHOT, STATS or SHUTDOWN)"
                )))
            }
        };
        let trailing: Vec<&str> = match &req {
            // INGEST consumes the tail as items; others must be exact.
            Request::Ingest(..) => Vec::new(),
            _ => fields.collect(),
        };
        if !trailing.is_empty() {
            return Err(ParseError(format!(
                "unexpected trailing fields {trailing:?} after {verb}"
            )));
        }
        Ok(req)
    }

    /// Render the request back to its canonical wire line — the exact
    /// string [`parse`](Request::parse) accepts, and the form the WAL
    /// stores for mutating verbs (rebuilt, never echoed, so recovery
    /// re-reads exactly what the server executed).
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping => "PING".to_owned(),
            Request::Ingest(customer, date, items) => {
                let mut line = format!("INGEST {} {date}", customer.raw());
                for item in items {
                    line.push(' ');
                    line.push_str(&item.raw().to_string());
                }
                line
            }
            Request::Score(customer) => format!("SCORE {}", customer.raw()),
            Request::Flush(date) => format!("FLUSH {date}"),
            Request::Snapshot => "SNAPSHOT".to_owned(),
            Request::Stats => "STATS".to_owned(),
            Request::Shutdown => "SHUTDOWN".to_owned(),
        }
    }

    /// The verb name, as used in per-verb metric names.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Ingest(..) => "ingest",
            Request::Score(_) => "score",
            Request::Flush(_) => "flush",
            Request::Snapshot => "snapshot",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

fn parse_customer(field: Option<&str>) -> Result<CustomerId, ParseError> {
    let f = field.ok_or_else(|| ParseError("missing customer id".into()))?;
    f.parse::<u64>()
        .map(CustomerId::new)
        .map_err(|_| ParseError(format!("bad customer id {f:?}")))
}

fn parse_date(field: Option<&str>) -> Result<Date, ParseError> {
    let f = field.ok_or_else(|| ParseError("missing date".into()))?;
    Date::parse_iso(f).map_err(|e| ParseError(format!("bad date {f:?}: {e}")))
}

/// Render one `CLOSED` line (no trailing newline).
pub fn format_closed(closed: &WindowClosed) -> String {
    let lost = if closed.explanation.lost.is_empty() {
        "-".to_owned()
    } else {
        closed
            .explanation
            .lost
            .iter()
            .map(|l| format!("{}:{}", l.item.raw(), l.share))
            .collect::<Vec<String>>()
            .join(",")
    };
    format!(
        "CLOSED {} {} {} {} {} {}",
        closed.customer.raw(),
        closed.point.window.raw(),
        closed.point.value,
        closed.point.present_significance,
        closed.point.total_significance,
        lost
    )
}

/// Render a `SCORE` response line (no trailing newline).
pub fn format_score(customer: CustomerId, point: &StabilityPoint) -> String {
    format!(
        "SCORE {} {} {} {} {}",
        customer.raw(),
        point.window.raw(),
        point.value,
        point.present_significance,
        point.total_significance
    )
}

/// A score parsed back from a [`format_closed`]/[`format_score`] line —
/// what the load generator and the tests consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParsedScore {
    /// The customer.
    pub customer: u64,
    /// The window index.
    pub window: u32,
    /// The stability value, bit-identical to the server's `f64`.
    pub value: f64,
    /// Present significance of the window.
    pub present: f64,
    /// Total significance of the history.
    pub total: f64,
}

/// Parse a `CLOSED` or `SCORE` line produced by this module.
pub fn parse_score_line(line: &str) -> Result<ParsedScore, ParseError> {
    let fields: Vec<&str> = line.split_ascii_whitespace().collect();
    if fields.len() < 6 || (fields[0] != "CLOSED" && fields[0] != "SCORE") {
        return Err(ParseError(format!("not a score line: {line:?}")));
    }
    let num = |i: usize| -> Result<f64, ParseError> {
        fields[i]
            .parse()
            .map_err(|_| ParseError(format!("bad number {:?} in {line:?}", fields[i])))
    };
    Ok(ParsedScore {
        customer: fields[1]
            .parse()
            .map_err(|_| ParseError(format!("bad customer in {line:?}")))?,
        window: fields[2]
            .parse()
            .map_err(|_| ParseError(format!("bad window in {line:?}")))?,
        value: num(3)?,
        present: num(4)?,
        total: num(5)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_core::StabilityParams;
    use attrition_store::WindowSpec;
    use attrition_types::Basket;

    #[test]
    fn parses_every_verb() {
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        assert_eq!(
            Request::parse("INGEST 7 2012-05-02 1 2 3").unwrap(),
            Request::Ingest(
                CustomerId::new(7),
                Date::from_ymd(2012, 5, 2).unwrap(),
                vec![ItemId::new(1), ItemId::new(2), ItemId::new(3)]
            )
        );
        // Empty basket is legal (a visit with no tracked items).
        assert_eq!(
            Request::parse("INGEST 7 2012-05-02").unwrap(),
            Request::Ingest(
                CustomerId::new(7),
                Date::from_ymd(2012, 5, 2).unwrap(),
                vec![]
            )
        );
        assert_eq!(
            Request::parse("SCORE 9").unwrap(),
            Request::Score(CustomerId::new(9))
        );
        assert_eq!(
            Request::parse("FLUSH 2013-01-01").unwrap(),
            Request::Flush(Date::from_ymd(2013, 1, 1).unwrap())
        );
        assert_eq!(Request::parse("SNAPSHOT").unwrap(), Request::Snapshot);
        assert_eq!(Request::parse("STATS").unwrap(), Request::Stats);
        assert_eq!(Request::parse("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "NOPE",
            "INGEST",
            "INGEST x 2012-05-02 1",
            "INGEST 7 yesterday 1",
            "INGEST 7 2012-05-02 banana",
            "SCORE",
            "SCORE -3",
            "FLUSH",
            "FLUSH 2012-13-40",
            "PING extra",
            "SHUTDOWN now",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn verb_names_cover_all_requests() {
        assert_eq!(Request::Ping.verb(), "ping");
        assert_eq!(Request::Snapshot.verb(), "snapshot");
        assert_eq!(Request::parse("FLUSH 2013-01-01").unwrap().verb(), "flush");
    }

    #[test]
    fn score_lines_roundtrip_bit_identically() {
        // Produce a real closed window and check the wire value parses
        // back to the identical f64.
        let origin = Date::from_ymd(2012, 5, 1).unwrap();
        let mut m = attrition_core::StabilityMonitor::new(
            WindowSpec::months(origin, 1),
            StabilityParams::PAPER,
        );
        let c = CustomerId::new(3);
        m.ingest(c, origin, &Basket::from_raw(&[1, 2, 5]));
        m.ingest(c, origin.add_months(1), &Basket::from_raw(&[1]));
        let closed = m.ingest(c, origin.add_months(2), &Basket::from_raw(&[2]));
        assert!(!closed.is_empty());
        for w in &closed {
            let parsed = parse_score_line(&format_closed(w)).unwrap();
            assert_eq!(parsed.customer, w.customer.raw());
            assert_eq!(parsed.window, w.point.window.raw());
            assert_eq!(parsed.value.to_bits(), w.point.value.to_bits());
            assert_eq!(
                parsed.present.to_bits(),
                w.point.present_significance.to_bits()
            );
            assert_eq!(parsed.total.to_bits(), w.point.total_significance.to_bits());
        }
        let preview = m.preview(c).unwrap();
        let parsed = parse_score_line(&format_score(c, &preview)).unwrap();
        assert_eq!(parsed.value.to_bits(), preview.value.to_bits());
    }

    #[test]
    fn closed_line_lists_lost_items() {
        let origin = Date::from_ymd(2012, 5, 1).unwrap();
        let mut m = attrition_core::StabilityMonitor::new(
            WindowSpec::months(origin, 1),
            StabilityParams::PAPER,
        );
        let c = CustomerId::new(1);
        m.ingest(c, origin, &Basket::from_raw(&[4, 9]));
        let closed = m.ingest(c, origin.add_months(2), &Basket::from_raw(&[4]));
        // Second closed window (empty month) lost both items.
        let line = format_closed(&closed[1]);
        assert!(line.contains("4:"), "{line}");
        assert!(line.contains("9:"), "{line}");
    }
}
