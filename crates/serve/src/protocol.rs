//! The wire protocol: newline-delimited ASCII requests and responses.
//!
//! Every request is one line, `VERB [ARGS...]`, fields separated by
//! single spaces; every response is one line, except responses that
//! carry closed windows, which announce a count (`OK <n>`) followed by
//! exactly `n` `CLOSED` lines — a client always knows how many lines to
//! read before issuing its next request.
//!
//! ```text
//! PING                                  → PONG
//! INGEST <customer> <date> [<item>...]  → OK <n> then n × CLOSED lines
//! SCORE <customer>                      → SCORE <customer> <window> <value> <present> <total>
//! FLUSH <date>                          → OK <n> then n × CLOSED lines
//! SNAPSHOT                              → OK <bytes> <path>
//! STATS                                 → STATS <one-line JSON metrics report>
//! SHUTDOWN                              → OK draining
//! anything else                         → ERR <reason>
//! ```
//!
//! `<date>` is ISO `YYYY-MM-DD`; `<customer>`/`<item>` are the raw
//! integer ids. A `CLOSED` line is
//!
//! ```text
//! CLOSED <customer> <window> <value> <present> <total> <lost>
//! ```
//!
//! where `<lost>` is `-` or comma-joined `item:share` pairs. Stability
//! values are printed with Rust's shortest-roundtrip `f64` formatting,
//! so parsing them back yields the bit-identical score the offline
//! batch pipeline computes.

use attrition_core::incremental::WindowClosed;
use attrition_core::StabilityPoint;
use attrition_types::{CustomerId, Date, ItemId};
use std::fmt::Write as _;
use std::ops::Range;

/// Most members a `BATCH n` frame may announce. Bounds what a batch
/// frame can make the server buffer (n × [`MAX_LINE_BYTES`] at worst)
/// and keeps one group commit from starving concurrent connections.
///
/// [`MAX_LINE_BYTES`]: crate::server::MAX_LINE_BYTES
pub const MAX_BATCH: usize = 4096;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One receipt: customer, purchase date, basket items.
    Ingest(CustomerId, Date, Vec<ItemId>),
    /// Live (not yet closed) stability of a customer's current window.
    Score(CustomerId),
    /// Close every customer's windows before the one containing the date.
    Flush(Date),
    /// Write a checkpoint of the full sharded state to the server's
    /// snapshot path.
    Snapshot,
    /// One-line JSON metrics report.
    Stats,
    /// Graceful shutdown: drain connections, checkpoint, exit.
    Shutdown,
}

/// A request line that could not be parsed; the message is sent back
/// verbatim after `ERR `.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// A request parsed without owning its `INGEST` items: the items land
/// in a caller-provided arena and the request carries their index
/// range. This is what the batch path parses into, so a frame of
/// hundreds of `INGEST` lines shares one reusable `Vec<ItemId>` instead
/// of allocating one per op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedRequest {
    /// Liveness probe.
    Ping,
    /// One receipt; the items are `arena[range]`, in wire order
    /// (unsorted, possibly with duplicates).
    Ingest(CustomerId, Date, Range<usize>),
    /// Live stability of a customer's current window.
    Score(CustomerId),
    /// Close windows before the one containing the date.
    Flush(Date),
    /// Write the legacy snapshot.
    Snapshot,
    /// One-line JSON metrics report.
    Stats,
    /// Graceful shutdown.
    Shutdown,
}

impl ParsedRequest {
    /// The verb name, as used in per-verb metric names.
    pub fn verb(&self) -> &'static str {
        match self {
            ParsedRequest::Ping => "ping",
            ParsedRequest::Ingest(..) => "ingest",
            ParsedRequest::Score(_) => "score",
            ParsedRequest::Flush(_) => "flush",
            ParsedRequest::Snapshot => "snapshot",
            ParsedRequest::Stats => "stats",
            ParsedRequest::Shutdown => "shutdown",
        }
    }
}

impl Request {
    /// Parse one request line (without its trailing newline).
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let mut items = Vec::new();
        let parsed = Request::parse_into(line, &mut items)?;
        Ok(match parsed {
            ParsedRequest::Ping => Request::Ping,
            ParsedRequest::Ingest(customer, date, range) => {
                debug_assert_eq!(range, 0..items.len());
                Request::Ingest(customer, date, items)
            }
            ParsedRequest::Score(customer) => Request::Score(customer),
            ParsedRequest::Flush(date) => Request::Flush(date),
            ParsedRequest::Snapshot => Request::Snapshot,
            ParsedRequest::Stats => Request::Stats,
            ParsedRequest::Shutdown => Request::Shutdown,
        })
    }

    /// [`parse`](Request::parse) without allocating on success: `INGEST`
    /// items are appended to `items` (an arena the caller reuses across
    /// ops) and the returned request indexes into it. On error the arena
    /// is restored to its incoming length, so a failed member of a batch
    /// never leaks items into a later member's range.
    pub fn parse_into(line: &str, items: &mut Vec<ItemId>) -> Result<ParsedRequest, ParseError> {
        let mut fields = line.split_ascii_whitespace();
        let verb = fields
            .next()
            .ok_or_else(|| ParseError("empty request".into()))?;
        let req = match verb {
            "PING" => ParsedRequest::Ping,
            "INGEST" => {
                let start = items.len();
                let customer = parse_customer(fields.next())?;
                let date = parse_date(fields.next())?;
                for f in fields.by_ref() {
                    match f.parse::<u32>() {
                        Ok(raw) => items.push(ItemId::new(raw)),
                        Err(_) => {
                            items.truncate(start);
                            return Err(ParseError(format!("bad item id {f:?}")));
                        }
                    }
                }
                ParsedRequest::Ingest(customer, date, start..items.len())
            }
            "SCORE" => ParsedRequest::Score(parse_customer(fields.next())?),
            "FLUSH" => ParsedRequest::Flush(parse_date(fields.next())?),
            "SNAPSHOT" => ParsedRequest::Snapshot,
            "STATS" => ParsedRequest::Stats,
            "SHUTDOWN" => ParsedRequest::Shutdown,
            other => {
                return Err(ParseError(format!(
                    "unknown verb {other:?} (expected PING, INGEST, SCORE, FLUSH, SNAPSHOT, STATS or SHUTDOWN)"
                )))
            }
        };
        // INGEST consumes the tail as items; others must be exact.
        if !matches!(req, ParsedRequest::Ingest(..)) {
            if let Some(first) = fields.next() {
                return Err(ParseError(format!(
                    "unexpected trailing field {first:?} after {verb}"
                )));
            }
        }
        Ok(req)
    }

    /// Render the request back to its canonical wire line — the exact
    /// string [`parse`](Request::parse) accepts, and the form the WAL
    /// stores for mutating verbs (rebuilt, never echoed, so recovery
    /// re-reads exactly what the server executed).
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping => "PING".to_owned(),
            Request::Ingest(customer, date, items) => {
                let mut line = String::new();
                write_ingest_line(&mut line, *customer, *date, items);
                line
            }
            Request::Score(customer) => format!("SCORE {}", customer.raw()),
            Request::Flush(date) => {
                let mut line = String::new();
                write_flush_line(&mut line, *date);
                line
            }
            Request::Snapshot => "SNAPSHOT".to_owned(),
            Request::Stats => "STATS".to_owned(),
            Request::Shutdown => "SHUTDOWN".to_owned(),
        }
    }

    /// The verb name, as used in per-verb metric names.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Ingest(..) => "ingest",
            Request::Score(_) => "score",
            Request::Flush(_) => "flush",
            Request::Snapshot => "snapshot",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Append a canonical `INGEST` line (no newline) to `out` — the exact
/// bytes [`Request::to_line`] produces, without the intermediate
/// `String`. This is the WAL encoder of the batch path: the items are
/// written in the order given (the wire order), so a batched op logs
/// byte-identically to the unbatched `to_line` path.
pub fn write_ingest_line(out: &mut String, customer: CustomerId, date: Date, items: &[ItemId]) {
    let _ = write!(out, "INGEST {} {date}", customer.raw());
    for item in items {
        let _ = write!(out, " {}", item.raw());
    }
}

/// Append a canonical `FLUSH` line (no newline) to `out`.
pub fn write_flush_line(out: &mut String, date: Date) {
    let _ = write!(out, "FLUSH {date}");
}

/// Recognize and validate a `BATCH n` frame header.
///
/// Returns `None` when the line's first field is not `BATCH` (an
/// ordinary single-op line), `Some(Ok(n))` for a well-formed header
/// announcing `n` member lines (`1 ≤ n ≤ MAX_BATCH`), and
/// `Some(Err(_))` for a malformed header — `BATCH 0`, a non-numeric or
/// oversize count, or trailing fields. A malformed header is answered
/// with a single `ERR` and consumes only the header line, so the
/// connection framing stays intact.
pub fn parse_batch_header(line: &str) -> Option<Result<usize, ParseError>> {
    let mut fields = line.split_ascii_whitespace();
    if fields.next() != Some("BATCH") {
        return None;
    }
    Some((|| {
        let f = fields
            .next()
            .ok_or_else(|| ParseError("missing batch size after BATCH".into()))?;
        let n: usize = f
            .parse()
            .map_err(|_| ParseError(format!("bad batch size {f:?}")))?;
        if n == 0 {
            return Err(ParseError("batch size must be at least 1".into()));
        }
        if n > MAX_BATCH {
            return Err(ParseError(format!(
                "batch size {n} exceeds the maximum of {MAX_BATCH}"
            )));
        }
        if let Some(extra) = fields.next() {
            return Err(ParseError(format!(
                "unexpected trailing field {extra:?} after BATCH"
            )));
        }
        Ok(n)
    })())
}

/// The member lines of one batch frame, however they are stored. The
/// server hands the engine a [`PackedLines`] view over its reusable
/// per-connection buffers; tests and simple callers can pass a
/// `Vec<String>`. Object-safe so `dyn Service` can take batches.
pub trait BatchLines {
    /// Number of member lines.
    fn len(&self) -> usize;
    /// The `i`th member line (newline already stripped).
    fn line(&self, i: usize) -> &str;
    /// True when the batch has no members (never the case for frames
    /// that passed [`parse_batch_header`]).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A batch of member lines packed end-to-end in one string buffer, each
/// member a `(start, end)` byte range — the zero-allocation carrier the
/// server reuses across frames.
pub struct PackedLines<'a> {
    buf: &'a str,
    bounds: &'a [(usize, usize)],
}

impl<'a> PackedLines<'a> {
    /// View `bounds.len()` member lines packed inside `buf`.
    pub fn new(buf: &'a str, bounds: &'a [(usize, usize)]) -> PackedLines<'a> {
        PackedLines { buf, bounds }
    }
}

impl BatchLines for PackedLines<'_> {
    fn len(&self) -> usize {
        self.bounds.len()
    }
    fn line(&self, i: usize) -> &str {
        let (start, end) = self.bounds[i];
        &self.buf[start..end]
    }
}

impl BatchLines for Vec<String> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }
    fn line(&self, i: usize) -> &str {
        &self[i]
    }
}

fn parse_customer(field: Option<&str>) -> Result<CustomerId, ParseError> {
    let f = field.ok_or_else(|| ParseError("missing customer id".into()))?;
    f.parse::<u64>()
        .map(CustomerId::new)
        .map_err(|_| ParseError(format!("bad customer id {f:?}")))
}

fn parse_date(field: Option<&str>) -> Result<Date, ParseError> {
    let f = field.ok_or_else(|| ParseError("missing date".into()))?;
    Date::parse_iso(f).map_err(|e| ParseError(format!("bad date {f:?}: {e}")))
}

/// Render one `CLOSED` line (no trailing newline).
pub fn format_closed(closed: &WindowClosed) -> String {
    let mut out = String::new();
    format_closed_into(&mut out, closed);
    out
}

/// Append one `CLOSED` line (no trailing newline) to `out` without
/// intermediate allocations — byte-identical to [`format_closed`].
pub fn format_closed_into(out: &mut String, closed: &WindowClosed) {
    let _ = write!(
        out,
        "CLOSED {} {} {} {} {} ",
        closed.customer.raw(),
        closed.point.window.raw(),
        closed.point.value,
        closed.point.present_significance,
        closed.point.total_significance,
    );
    if closed.explanation.lost.is_empty() {
        out.push('-');
    } else {
        for (i, l) in closed.explanation.lost.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", l.item.raw(), l.share);
        }
    }
}

/// Render a `SCORE` response line (no trailing newline).
pub fn format_score(customer: CustomerId, point: &StabilityPoint) -> String {
    let mut out = String::new();
    format_score_into(&mut out, customer, point);
    out
}

/// Append a `SCORE` response line (no trailing newline) to `out`.
pub fn format_score_into(out: &mut String, customer: CustomerId, point: &StabilityPoint) {
    let _ = write!(
        out,
        "SCORE {} {} {} {} {}",
        customer.raw(),
        point.window.raw(),
        point.value,
        point.present_significance,
        point.total_significance
    );
}

/// A score parsed back from a [`format_closed`]/[`format_score`] line —
/// what the load generator and the tests consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParsedScore {
    /// The customer.
    pub customer: u64,
    /// The window index.
    pub window: u32,
    /// The stability value, bit-identical to the server's `f64`.
    pub value: f64,
    /// Present significance of the window.
    pub present: f64,
    /// Total significance of the history.
    pub total: f64,
}

/// Parse a `CLOSED` or `SCORE` line produced by this module.
pub fn parse_score_line(line: &str) -> Result<ParsedScore, ParseError> {
    let fields: Vec<&str> = line.split_ascii_whitespace().collect();
    if fields.len() < 6 || (fields[0] != "CLOSED" && fields[0] != "SCORE") {
        return Err(ParseError(format!("not a score line: {line:?}")));
    }
    let num = |i: usize| -> Result<f64, ParseError> {
        fields[i]
            .parse()
            .map_err(|_| ParseError(format!("bad number {:?} in {line:?}", fields[i])))
    };
    Ok(ParsedScore {
        customer: fields[1]
            .parse()
            .map_err(|_| ParseError(format!("bad customer in {line:?}")))?,
        window: fields[2]
            .parse()
            .map_err(|_| ParseError(format!("bad window in {line:?}")))?,
        value: num(3)?,
        present: num(4)?,
        total: num(5)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_core::StabilityParams;
    use attrition_store::WindowSpec;
    use attrition_types::Basket;

    #[test]
    fn parses_every_verb() {
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        assert_eq!(
            Request::parse("INGEST 7 2012-05-02 1 2 3").unwrap(),
            Request::Ingest(
                CustomerId::new(7),
                Date::from_ymd(2012, 5, 2).unwrap(),
                vec![ItemId::new(1), ItemId::new(2), ItemId::new(3)]
            )
        );
        // Empty basket is legal (a visit with no tracked items).
        assert_eq!(
            Request::parse("INGEST 7 2012-05-02").unwrap(),
            Request::Ingest(
                CustomerId::new(7),
                Date::from_ymd(2012, 5, 2).unwrap(),
                vec![]
            )
        );
        assert_eq!(
            Request::parse("SCORE 9").unwrap(),
            Request::Score(CustomerId::new(9))
        );
        assert_eq!(
            Request::parse("FLUSH 2013-01-01").unwrap(),
            Request::Flush(Date::from_ymd(2013, 1, 1).unwrap())
        );
        assert_eq!(Request::parse("SNAPSHOT").unwrap(), Request::Snapshot);
        assert_eq!(Request::parse("STATS").unwrap(), Request::Stats);
        assert_eq!(Request::parse("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "NOPE",
            "INGEST",
            "INGEST x 2012-05-02 1",
            "INGEST 7 yesterday 1",
            "INGEST 7 2012-05-02 banana",
            "SCORE",
            "SCORE -3",
            "FLUSH",
            "FLUSH 2012-13-40",
            "PING extra",
            "SHUTDOWN now",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn trailing_field_errors_name_the_first_offender() {
        let err = Request::parse("PING extra stuff").unwrap_err();
        assert!(err.0.contains("\"extra\""), "{err}");
        let err = Request::parse("SCORE 9 10").unwrap_err();
        assert!(err.0.contains("\"10\""), "{err}");
    }

    #[test]
    fn parse_into_shares_one_arena_across_ops() {
        let mut arena = Vec::new();
        let a = Request::parse_into("INGEST 7 2012-05-02 3 1 3", &mut arena).unwrap();
        let b = Request::parse_into("INGEST 8 2012-05-03 9", &mut arena).unwrap();
        let c = Request::parse_into("SCORE 7", &mut arena).unwrap();
        let ParsedRequest::Ingest(ca, _, ra) = a else {
            panic!("not an ingest: {a:?}")
        };
        let ParsedRequest::Ingest(cb, _, rb) = b else {
            panic!("not an ingest: {b:?}")
        };
        assert_eq!(ca, CustomerId::new(7));
        assert_eq!(cb, CustomerId::new(8));
        // Wire order preserved, duplicates kept: the WAL line must be
        // byte-identical to what the client sent.
        assert_eq!(
            &arena[ra],
            &[ItemId::new(3), ItemId::new(1), ItemId::new(3)]
        );
        assert_eq!(&arena[rb], &[ItemId::new(9)]);
        assert_eq!(c, ParsedRequest::Score(CustomerId::new(7)));
        assert_eq!(arena.len(), 4);
    }

    #[test]
    fn parse_into_restores_the_arena_on_error() {
        let mut arena = vec![ItemId::new(42)];
        assert!(Request::parse_into("INGEST 7 2012-05-02 1 2 banana", &mut arena).is_err());
        assert_eq!(arena, vec![ItemId::new(42)]);
        assert!(Request::parse_into("INGEST x 2012-05-02 1", &mut arena).is_err());
        assert_eq!(arena, vec![ItemId::new(42)]);
    }

    #[test]
    fn batch_headers_parse_and_reject() {
        assert!(parse_batch_header("PING").is_none());
        assert!(parse_batch_header("INGEST 7 2012-05-02").is_none());
        assert!(parse_batch_header("").is_none());
        assert_eq!(parse_batch_header("BATCH 1").unwrap().unwrap(), 1);
        assert_eq!(parse_batch_header("BATCH 256").unwrap().unwrap(), 256);
        assert_eq!(
            parse_batch_header(&format!("BATCH {MAX_BATCH}"))
                .unwrap()
                .unwrap(),
            MAX_BATCH
        );
        for bad in [
            "BATCH",
            "BATCH 0",
            "BATCH -1",
            "BATCH x",
            "BATCH 2 extra",
            &format!("BATCH {}", MAX_BATCH + 1),
        ] {
            assert!(
                parse_batch_header(bad).unwrap().is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn packed_lines_and_vec_agree() {
        let buf = "PING__SCORE 7_";
        let bounds = [(0, 4), (6, 13), (13, 13)];
        let packed = PackedLines::new(buf, &bounds);
        let vec: Vec<String> = vec!["PING".into(), "SCORE 7".into(), String::new()];
        assert_eq!(BatchLines::len(&packed), BatchLines::len(&vec));
        for i in 0..BatchLines::len(&vec) {
            assert_eq!(packed.line(i), vec.line(i));
        }
        assert!(!packed.is_empty());
    }

    #[test]
    fn write_helpers_match_to_line() {
        let reqs = [
            Request::parse("INGEST 7 2012-05-02 5 3 5 1").unwrap(),
            Request::parse("INGEST 0 2012-05-02").unwrap(),
            Request::parse("FLUSH 2013-01-31").unwrap(),
        ];
        for req in &reqs {
            let mut out = String::from("prefix|");
            match req {
                Request::Ingest(c, d, items) => write_ingest_line(&mut out, *c, *d, items),
                Request::Flush(d) => write_flush_line(&mut out, *d),
                _ => unreachable!(),
            }
            assert_eq!(out, format!("prefix|{}", req.to_line()));
        }
    }

    #[test]
    fn verb_names_cover_all_requests() {
        assert_eq!(Request::Ping.verb(), "ping");
        assert_eq!(Request::Snapshot.verb(), "snapshot");
        assert_eq!(Request::parse("FLUSH 2013-01-01").unwrap().verb(), "flush");
    }

    #[test]
    fn score_lines_roundtrip_bit_identically() {
        // Produce a real closed window and check the wire value parses
        // back to the identical f64.
        let origin = Date::from_ymd(2012, 5, 1).unwrap();
        let mut m = attrition_core::StabilityMonitor::new(
            WindowSpec::months(origin, 1),
            StabilityParams::PAPER,
        );
        let c = CustomerId::new(3);
        m.ingest(c, origin, &Basket::from_raw(&[1, 2, 5]));
        m.ingest(c, origin.add_months(1), &Basket::from_raw(&[1]));
        let closed = m.ingest(c, origin.add_months(2), &Basket::from_raw(&[2]));
        assert!(!closed.is_empty());
        for w in &closed {
            let parsed = parse_score_line(&format_closed(w)).unwrap();
            assert_eq!(parsed.customer, w.customer.raw());
            assert_eq!(parsed.window, w.point.window.raw());
            assert_eq!(parsed.value.to_bits(), w.point.value.to_bits());
            assert_eq!(
                parsed.present.to_bits(),
                w.point.present_significance.to_bits()
            );
            assert_eq!(parsed.total.to_bits(), w.point.total_significance.to_bits());
        }
        let preview = m.preview(c).unwrap();
        let parsed = parse_score_line(&format_score(c, &preview)).unwrap();
        assert_eq!(parsed.value.to_bits(), preview.value.to_bits());
    }

    #[test]
    fn closed_line_lists_lost_items() {
        let origin = Date::from_ymd(2012, 5, 1).unwrap();
        let mut m = attrition_core::StabilityMonitor::new(
            WindowSpec::months(origin, 1),
            StabilityParams::PAPER,
        );
        let c = CustomerId::new(1);
        m.ingest(c, origin, &Basket::from_raw(&[4, 9]));
        let closed = m.ingest(c, origin.add_months(2), &Basket::from_raw(&[4]));
        // Second closed window (empty month) lost both items.
        let line = format_closed(&closed[1]);
        assert!(line.contains("4:"), "{line}");
        assert!(line.contains("9:"), "{line}");
    }
}
