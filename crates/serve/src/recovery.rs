//! Crash recovery: newest valid checkpoint + WAL replay.
//!
//! [`recover`] rebuilds the monitor state a crashed (or cleanly
//! stopped) server had acknowledged, from its WAL directory:
//!
//! 1. **Checkpoint.** Walk `checkpoint-*.ckpt` newest-first; the first
//!    one that passes its length+CRC header is restored. Corrupt or
//!    torn checkpoints are *skipped*, not fatal — an older checkpoint
//!    plus a longer replay reaches the same state, because the WAL is
//!    only truncated after a checkpoint is durably renamed in.
//! 2. **Replay.** Decode `wal.log` and re-apply every record with
//!    `seq > checkpoint LSN` in log order. Records at or below the LSN
//!    are already folded into the checkpoint and are skipped by their
//!    sequence number — replay is idempotent, so a crash between
//!    checkpoint rename and WAL truncation double-writes nothing.
//! 3. **Torn tail.** A partial or corrupt final frame (the write the
//!    crash interrupted) is detected by the CRC framing, truncated off
//!    the file, and reported. Everything before it was acked and is
//!    kept; the torn record was never acked, so dropping it is correct.
//!
//! The result is bit-identical to the state of an uncrashed server that
//! processed exactly the acknowledged requests (proven by the crash
//! tests in `tests/crash_recovery.rs` and the CLI's SIGKILL e2e test).

use crate::checkpoint::{self, CheckpointError};
use crate::env::{RealStorage, Storage};
use crate::protocol::Request;
use crate::wal::{self, WAL_FILE};
use attrition_core::{StabilityMonitor, StabilityParams};
use attrition_store::WindowSpec;
use attrition_types::Basket;
use std::path::Path;

/// Grid configuration used when no checkpoint exists yet (first boot):
/// the WAL alone cannot define the window grid.
#[derive(Debug, Clone, Copy)]
pub struct Fallback {
    /// The window grid.
    pub spec: WindowSpec,
    /// Significance parameters.
    pub params: StabilityParams,
    /// Lost products retained per closed-window explanation.
    pub max_explanations: usize,
}

/// What [`recover`] did, for the startup log line and the tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryStats {
    /// LSN of the checkpoint that was loaded (`None`: fresh/WAL-only).
    pub checkpoint_lsn: Option<u64>,
    /// Checkpoints that failed verification and were skipped.
    pub corrupt_checkpoints: u64,
    /// The loaded checkpoint was salvaged from a stranded `*.ckpt.tmp`
    /// staging file (a crash hit between the staging write and a
    /// durable rename).
    pub salvaged_tmp: bool,
    /// WAL records re-applied (seq above the checkpoint LSN).
    pub replayed: u64,
    /// WAL records skipped because the checkpoint already covers them.
    pub already_applied: u64,
    /// Replayed ingests rejected as out-of-order — exactly the requests
    /// the live server answered `ERR` to, so skipping them reproduces
    /// the served state.
    pub out_of_order: u64,
    /// Torn bytes truncated off the end of the WAL.
    pub torn_bytes: u64,
    /// The sequence number the reopened WAL continues from.
    pub next_seq: u64,
    /// Customers tracked after recovery.
    pub customers: usize,
}

impl std::fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.checkpoint_lsn {
            Some(lsn) if self.salvaged_tmp => write!(f, "checkpoint lsn {lsn} (salvaged tmp)")?,
            Some(lsn) => write!(f, "checkpoint lsn {lsn}")?,
            None => write!(f, "no checkpoint")?,
        }
        write!(
            f,
            ", replayed {} wal records ({} already applied, {} out-of-order)",
            self.replayed, self.already_applied, self.out_of_order
        )?;
        if self.corrupt_checkpoints > 0 {
            write!(
                f,
                ", skipped {} corrupt checkpoints",
                self.corrupt_checkpoints
            )?;
        }
        if self.torn_bytes > 0 {
            write!(f, ", truncated {} torn tail bytes", self.torn_bytes)?;
        }
        write!(f, "; {} customers live", self.customers)
    }
}

/// Why recovery could not produce a monitor.
#[derive(Debug)]
pub enum RecoveryError {
    /// Filesystem trouble reading the WAL directory or log.
    Io(std::io::Error),
    /// No valid checkpoint exists and no [`Fallback`] grid was given.
    NoGrid,
    /// A CRC-valid WAL record does not parse as a protocol request —
    /// a version skew or foreign file, never something to guess around.
    BadRecord {
        /// The record's sequence number.
        seq: u64,
        /// The parse failure.
        reason: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery i/o error: {e}"),
            RecoveryError::NoGrid => write!(
                f,
                "no valid checkpoint in the wal directory and no window grid \
                 configured — pass the grid (e.g. --origin) for first boot"
            ),
            RecoveryError::BadRecord { seq, reason } => {
                write!(f, "wal record {seq} is valid but unparseable: {reason}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> RecoveryError {
        RecoveryError::Io(e)
    }
}

/// Recover the acknowledged state from `dir` (see the module docs).
/// `fallback` supplies the grid when no checkpoint exists yet.
///
/// Side effects: a torn WAL tail is truncated off `wal.log`. Nothing
/// else is modified — checkpoint rotation stays the running server's
/// job.
pub fn recover(
    dir: &Path,
    fallback: Option<&Fallback>,
) -> Result<(StabilityMonitor, RecoveryStats), RecoveryError> {
    recover_in(&*RealStorage::shared(), dir, fallback)
}

/// One verified restore attempt during the checkpoint walk.
fn try_restore(
    storage: &dyn Storage,
    lsn: u64,
    path: &Path,
    corrupt_checkpoints: &mut u64,
) -> Result<Option<(u64, StabilityMonitor)>, RecoveryError> {
    match checkpoint::read_in(storage, path) {
        Ok(ckpt) => match StabilityMonitor::restore_any(&ckpt.body) {
            Ok(monitor) => return Ok(Some((ckpt.lsn, monitor))),
            Err(e) => {
                // Header passed but the body does not restore: treat
                // like corruption and keep walking back.
                *corrupt_checkpoints += 1;
                attrition_obs::counter("serve.recovery.corrupt_checkpoints").inc();
                eprintln!(
                    "recovery: skipping checkpoint {} (lsn {lsn}): {e}",
                    path.display()
                );
            }
        },
        Err(CheckpointError::Corrupt(reason)) => {
            *corrupt_checkpoints += 1;
            attrition_obs::counter("serve.recovery.corrupt_checkpoints").inc();
            eprintln!(
                "recovery: skipping checkpoint {} (lsn {lsn}): {reason}",
                path.display()
            );
        }
        Err(CheckpointError::Io(e)) => return Err(RecoveryError::Io(e)),
    }
    Ok(None)
}

/// [`recover`] against an explicit [`Storage`] — what the deterministic
/// simulator calls with its in-memory filesystem.
pub fn recover_in(
    storage: &dyn Storage,
    dir: &Path,
    fallback: Option<&Fallback>,
) -> Result<(StabilityMonitor, RecoveryStats), RecoveryError> {
    // Newest valid checkpoint, falling back past corrupt ones.
    let mut corrupt_checkpoints = 0u64;
    let mut salvaged_tmp = false;
    let mut restored: Option<(u64, StabilityMonitor)> = None;
    for (lsn, path) in checkpoint::list_in(storage, dir)? {
        if let Some(found) = try_restore(storage, lsn, &path, &mut corrupt_checkpoints)? {
            restored = Some(found);
            break;
        }
    }
    if restored.is_none() {
        // Last resort: a stranded `*.ckpt.tmp` staging file. A crash
        // between the staging write and a durable rename leaves a fully
        // written, fully verifiable checkpoint under the tmp name while
        // the WAL may already have been truncated against it — salvaging
        // it (header + CRC must still verify) recovers that state
        // instead of erroring out or silently rewinding.
        for (lsn, path) in checkpoint::list_tmp_in(storage, dir)? {
            if let Some(found) = try_restore(storage, lsn, &path, &mut corrupt_checkpoints)? {
                eprintln!(
                    "recovery: adopting stranded staging checkpoint {} (lsn {lsn})",
                    path.display()
                );
                salvaged_tmp = true;
                restored = Some(found);
                break;
            }
        }
    }

    let (checkpoint_lsn, mut monitor) = match restored {
        Some((lsn, monitor)) => (Some(lsn), monitor),
        None => match fallback {
            Some(fb) => (
                None,
                StabilityMonitor::new(fb.spec, fb.params)
                    .with_max_explanations(fb.max_explanations),
            ),
            None => return Err(RecoveryError::NoGrid),
        },
    };
    let floor = checkpoint_lsn.unwrap_or(0);

    // Replay the log above the checkpoint, truncating a torn tail.
    let wal_path = dir.join(WAL_FILE);
    let scan = wal::read_records_in(storage, &wal_path)?;
    if scan.torn_bytes > 0 {
        wal::truncate_to_valid_in(storage, &wal_path, scan.valid_len)?;
        attrition_obs::counter("serve.recovery.torn_bytes").add(scan.torn_bytes);
    }
    let mut stats = RecoveryStats {
        checkpoint_lsn,
        corrupt_checkpoints,
        salvaged_tmp,
        replayed: 0,
        already_applied: 0,
        out_of_order: 0,
        torn_bytes: scan.torn_bytes,
        next_seq: floor + 1,
        customers: 0,
    };
    for record in scan.records {
        stats.next_seq = stats.next_seq.max(record.seq + 1);
        if record.seq <= floor {
            stats.already_applied += 1;
            continue;
        }
        match Request::parse(&record.op) {
            Ok(Request::Ingest(customer, date, items)) => {
                // Mirror the live server's out-of-order rejection
                // (`ShardedMonitor::ingest`): a record the server
                // answered `ERR` to must not mutate state on replay.
                let rejected = match (monitor.spec().window_of(date), monitor.preview(customer)) {
                    (Some(window), Some(preview)) => window.raw() < preview.window.raw(),
                    _ => false,
                };
                if rejected {
                    stats.out_of_order += 1;
                    continue;
                }
                monitor.ingest(customer, date, &Basket::new(items));
                stats.replayed += 1;
            }
            Ok(Request::Flush(date)) => {
                monitor.flush_until(date);
                stats.replayed += 1;
            }
            Ok(other) => {
                return Err(RecoveryError::BadRecord {
                    seq: record.seq,
                    reason: format!("non-mutating verb {:?} in the log", other.verb()),
                })
            }
            Err(e) => {
                return Err(RecoveryError::BadRecord {
                    seq: record.seq,
                    reason: e.to_string(),
                })
            }
        }
    }
    attrition_obs::counter("serve.recovery.replayed_records").add(stats.replayed);
    stats.customers = monitor.num_customers();
    Ok((monitor, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{SyncPolicy, Wal};
    use attrition_types::{CustomerId, Date};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("attrition_recovery_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fallback() -> Fallback {
        Fallback {
            spec: WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1),
            params: StabilityParams::PAPER,
            max_explanations: 5,
        }
    }

    #[test]
    fn fresh_directory_needs_a_grid() {
        let dir = temp_dir("fresh");
        assert!(matches!(recover(&dir, None), Err(RecoveryError::NoGrid)));
        let (monitor, stats) = recover(&dir, Some(&fallback())).unwrap();
        assert_eq!(monitor.num_customers(), 0);
        assert_eq!(stats.next_seq, 1);
        assert_eq!(stats.checkpoint_lsn, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_only_replay_rebuilds_state() {
        let dir = temp_dir("walonly");
        let mut wal = Wal::open(&dir.join(WAL_FILE), SyncPolicy::Never, 1).unwrap();
        wal.append("INGEST 7 2012-05-02 1 2").unwrap();
        wal.append("INGEST 7 2012-06-03 1").unwrap();
        wal.append("FLUSH 2012-07-01").unwrap();
        drop(wal);
        let (monitor, stats) = recover(&dir, Some(&fallback())).unwrap();
        assert_eq!(stats.replayed, 3);
        assert_eq!(stats.next_seq, 4);
        assert_eq!(monitor.num_customers(), 1);
        let preview = monitor.preview(CustomerId::new(7)).unwrap();
        assert_eq!(preview.window.raw(), 2, "flush advanced past two windows");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_plus_overlapping_wal_is_idempotent() {
        let dir = temp_dir("idempotent");
        // Build reference state, checkpoint at lsn 2, but leave all 3
        // records in the WAL — as if the crash hit between checkpoint
        // rename and WAL truncation.
        let fb = fallback();
        let mut reference = StabilityMonitor::new(fb.spec, fb.params).with_max_explanations(5);
        let ops = [
            "INGEST 1 2012-05-02 10 11",
            "INGEST 1 2012-06-02 10",
            "INGEST 1 2012-07-02 11",
        ];
        let mut wal = Wal::open(&dir.join(WAL_FILE), SyncPolicy::Never, 1).unwrap();
        for op in ops {
            wal.append(op).unwrap();
        }
        drop(wal);
        for op in &ops[..2] {
            let Request::Ingest(c, d, items) = Request::parse(op).unwrap() else {
                unreachable!()
            };
            reference.ingest(c, d, &Basket::new(items));
        }
        checkpoint::write(&dir, 2, &reference.snapshot()).unwrap();
        {
            let Request::Ingest(c, d, items) = Request::parse(ops[2]).unwrap() else {
                unreachable!()
            };
            reference.ingest(c, d, &Basket::new(items));
        }

        let (monitor, stats) = recover(&dir, None).unwrap();
        assert_eq!(stats.checkpoint_lsn, Some(2));
        assert_eq!(stats.already_applied, 2, "covered records must be skipped");
        assert_eq!(stats.replayed, 1);
        assert_eq!(stats.next_seq, 4);
        assert_eq!(
            monitor.snapshot(),
            reference.snapshot(),
            "double-apply detected"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let dir = temp_dir("fallback");
        let fb = fallback();
        let mut monitor = StabilityMonitor::new(fb.spec, fb.params).with_max_explanations(5);
        monitor.ingest(
            CustomerId::new(3),
            Date::from_ymd(2012, 5, 2).unwrap(),
            &Basket::from_raw(&[1]),
        );
        let old_snapshot = monitor.snapshot();
        checkpoint::write(&dir, 1, &old_snapshot).unwrap();
        // Newer checkpoint, then corrupt it on disk.
        monitor.ingest(
            CustomerId::new(4),
            Date::from_ymd(2012, 5, 3).unwrap(),
            &Basket::from_raw(&[2]),
        );
        let newer = checkpoint::write(&dir, 2, &monitor.snapshot()).unwrap();
        let mut bytes = std::fs::read(&newer).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newer, &bytes).unwrap();

        let (recovered, stats) = recover(&dir, None).unwrap();
        assert_eq!(stats.checkpoint_lsn, Some(1));
        assert_eq!(stats.corrupt_checkpoints, 1);
        assert_eq!(recovered.snapshot(), old_snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = temp_dir("torn");
        let wal_path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&wal_path, SyncPolicy::Never, 1).unwrap();
        wal.append("INGEST 1 2012-05-02 1").unwrap();
        wal.append("INGEST 2 2012-05-02 2").unwrap();
        drop(wal);
        // Tear 3 bytes off the final frame.
        let len = std::fs::metadata(&wal_path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let (monitor, stats) = recover(&dir, Some(&fallback())).unwrap();
        assert_eq!(stats.replayed, 1, "only the intact record replays");
        assert!(stats.torn_bytes > 0);
        assert_eq!(monitor.num_customers(), 1);
        // The file is clean now: recovering again reports no tear and
        // appending continues from the right sequence number.
        let (_, again) = recover(&dir, Some(&fallback())).unwrap();
        assert_eq!(again.torn_bytes, 0);
        assert_eq!(again.next_seq, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_records_are_an_error_not_a_guess() {
        let dir = temp_dir("foreign");
        let mut wal = Wal::open(&dir.join(WAL_FILE), SyncPolicy::Never, 1).unwrap();
        wal.append("SCORE 1").unwrap();
        drop(wal);
        assert!(matches!(
            recover(&dir, Some(&fallback())),
            Err(RecoveryError::BadRecord { seq: 1, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
