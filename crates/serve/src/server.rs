//! The TCP server: accept loop, connection handling, graceful shutdown.
//!
//! One acceptor thread owns the listener; each accepted connection
//! becomes a job on the bounded [`ThreadPool`](crate::pool::ThreadPool).
//! When the pool is saturated the connection is answered `ERR busy` and
//! dropped immediately (see the pool's backpressure contract). A
//! `SHUTDOWN` request — or SIGINT, via [`install_sigint_handler`] —
//! stops the acceptor, drains every in-flight connection (each finishes
//! its current request; idle connections close within the read
//! timeout), writes a final checkpoint, and returns a [`ServerSummary`].
//!
//! The request semantics themselves — protocol execution, WAL,
//! checkpoint triggers — live in the transport-independent
//! [`Engine`](crate::engine::Engine); this module is only the real
//! network front-end for it (the deterministic simulator is another).
//!
//! ## Durability
//!
//! With a [`DurabilityConfig`] set, every mutating request (`INGEST`,
//! `FLUSH`) is appended to the [write-ahead log](crate::wal) *before*
//! it is applied and acknowledged, and the full state is periodically
//! [checkpointed](crate::checkpoint) crash-atomically, after which the
//! WAL is truncated. The durability lock is held across append + apply,
//! so the log order equals the apply order and a checkpoint always cuts
//! at an exact LSN — mutating requests serialize on that lock (reads
//! do not), which is the honest cost of a single log file: under
//! `--sync-policy always` the fsync, not the lock, dominates. A client
//! amortizes that fsync with `BATCH` frames (DESIGN §14): all mutating
//! members of one frame share one group-commit fsync.

use crate::engine::{BatchScratch, Engine, ShutdownReport};
use crate::pool::ThreadPool;
use crate::protocol::{parse_batch_header, BatchLines, PackedLines, ParseError};
use crate::shard::ShardedMonitor;
use attrition_core::StabilityParams;
use attrition_obs::Counter;
use attrition_store::WindowSpec;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, IoSlice, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::engine::DurabilityConfig;

/// What the accept loop needs from a request executor. [`Engine`] is
/// the canonical implementation; a replica front-end (or any other
/// request core that speaks the newline protocol) plugs into the same
/// TCP machinery through [`start_service`] by implementing this.
pub trait Service: Send + Sync {
    /// Execute one request line; returns `(verb, response)` — the
    /// response may span multiple lines but never ends with a newline.
    fn respond(&self, line: &str) -> (&'static str, String);
    /// Execute one batch frame, appending `OKBATCH <n>` plus every
    /// member response (`'\n'`-joined, no trailing newline) to `out`.
    /// The default runs each member through [`respond`](Service::respond)
    /// — correct for any service, without fsync amortization; the
    /// [`Engine`] overrides it with the group-commit WAL path.
    fn respond_batch(&self, batch: &dyn BatchLines, _scratch: &mut BatchScratch, out: &mut String) {
        let _ = write!(out, "OKBATCH {}", batch.len());
        for i in 0..batch.len() {
            let (_verb, response) = self.respond(batch.line(i));
            out.push('\n');
            out.push_str(&response);
        }
    }
    /// Ask the service to drain: connection loops poll
    /// [`shutdown_requested`](Service::shutdown_requested) and stop.
    fn request_shutdown(&self);
    /// Whether shutdown was requested (via `SHUTDOWN` or
    /// [`request_shutdown`](Service::request_shutdown)).
    fn shutdown_requested(&self) -> bool;
    /// Requests executed (including ones answered `ERR`).
    fn requests(&self) -> u64;
    /// Requests answered `ERR`.
    fn errors(&self) -> u64;
    /// Customers tracked right now.
    fn num_customers(&self) -> usize;
    /// The shutdown epilogue: final checkpoint + snapshot, error
    /// surfacing, and lifetime counters for the summary.
    fn shutdown_flush(&self) -> ShutdownReport;
}

impl Service for Engine {
    fn respond(&self, line: &str) -> (&'static str, String) {
        Engine::respond(self, line)
    }
    fn respond_batch(&self, batch: &dyn BatchLines, scratch: &mut BatchScratch, out: &mut String) {
        Engine::respond_batch(self, batch, scratch, out)
    }
    fn request_shutdown(&self) {
        Engine::request_shutdown(self)
    }
    fn shutdown_requested(&self) -> bool {
        Engine::shutdown_requested(self)
    }
    fn requests(&self) -> u64 {
        Engine::requests(self)
    }
    fn errors(&self) -> u64 {
        Engine::errors(self)
    }
    fn num_customers(&self) -> usize {
        Engine::num_customers(self)
    }
    fn shutdown_flush(&self) -> ShutdownReport {
        Engine::shutdown_flush(self)
    }
}

/// Longest accepted request line (bytes, excluding the newline). A
/// frame that grows past this is answered `ERR line too long` and
/// discarded up to its newline — the connection stays usable, and the
/// server never buffers an attacker-sized line.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Everything the server needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7711` (`:0` for an ephemeral
    /// port — read it back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of monitor shards (each behind its own lock).
    pub n_shards: usize,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Connections waiting for a worker before `ERR busy` rejections
    /// start.
    pub queue_capacity: usize,
    /// Idle time after which a connection is closed.
    pub read_timeout: Duration,
    /// Where `SNAPSHOT` and shutdown write the legacy single-file
    /// snapshot; `None` disables it (`SNAPSHOT` answers `ERR`). The
    /// write is atomic (tmp + fsync + rename) but carries no WAL — for
    /// real durability configure [`durability`](ServerConfig::durability).
    pub snapshot_path: Option<PathBuf>,
    /// WAL + periodic checkpointing; `None` runs the server in-memory
    /// (the pre-durability behavior).
    pub durability: Option<DurabilityConfig>,
    /// The window grid every shard scores on.
    pub spec: WindowSpec,
    /// Significance parameters.
    pub params: StabilityParams,
    /// Lost products retained per closed-window explanation.
    pub max_explanations: usize,
}

impl ServerConfig {
    /// Defaults sized for a small deployment: 8 shards, 4 workers,
    /// a 64-connection queue, 5 s read timeout, no snapshot path.
    pub fn new(addr: impl Into<String>, spec: WindowSpec, params: StabilityParams) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            n_shards: 8,
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            snapshot_path: None,
            durability: None,
            spec,
            params,
            max_explanations: 5,
        }
    }
}

/// What a drained server reports back.
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// Requests served (including ones answered `ERR`).
    pub requests: u64,
    /// Requests answered `ERR` (parse failures, out-of-order ingests, …).
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections rejected with `ERR busy`.
    pub rejected_busy: u64,
    /// Customers tracked at shutdown.
    pub customers: usize,
    /// Where the final legacy snapshot was written, if anywhere.
    pub snapshot_path: Option<PathBuf>,
    /// Why the final snapshot write failed, if it did (also counted on
    /// `serve.snapshot.errors`).
    pub snapshot_error: Option<String>,
    /// Why the shutdown checkpoint failed, if it did. A durable server
    /// exiting with this set must be treated as a crash: the WAL still
    /// holds the tail and recovery will replay it.
    pub checkpoint_error: Option<String>,
    /// WAL records appended over this server's lifetime.
    pub wal_appends: u64,
    /// WAL fsyncs issued over this server's lifetime.
    pub wal_fsyncs: u64,
    /// Checkpoints written (periodic + shutdown).
    pub checkpoints: u64,
}

/// A running server; dropping the handle does **not** stop it — send
/// `SHUTDOWN`, call [`request_shutdown`](ServerHandle::request_shutdown),
/// or deliver SIGINT, then [`join`](ServerHandle::join).
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<dyn Service>,
    acceptor: JoinHandle<ServerSummary>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to drain and exit, as `SHUTDOWN` would.
    pub fn request_shutdown(&self) {
        self.service.request_shutdown();
    }

    /// Wait for the server to drain and return its summary.
    pub fn join(self) -> ServerSummary {
        self.acceptor
            .join()
            .expect("acceptor thread must not panic")
    }
}

/// Set by the process SIGINT handler; polled by every running server.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Route SIGINT (ctrl-c) into the graceful-shutdown path instead of
/// killing the process mid-request. Call once, before serving.
#[cfg(unix)]
pub fn install_sigint_handler() {
    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        SIGINT_RECEIVED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    // SAFETY: `signal` is libc's (already linked by std); the handler
    // only performs an atomic store, which is async-signal-safe.
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

/// No-op off unix: ctrl-c falls back to process termination.
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

/// Whether SIGINT was delivered since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT_RECEIVED.load(Ordering::SeqCst)
}

/// Bind and serve in background threads; returns once the listener is
/// accepting. Metrics recording is enabled for the process — a scoring
/// server's `STATS` verb is part of its contract.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let monitor = ShardedMonitor::new(
        config.n_shards,
        config.spec,
        config.params,
        config.max_explanations,
    );
    start_with(config, monitor)
}

/// [`start`] with a pre-populated (e.g. checkpoint-restored) monitor.
/// When durability is configured, the WAL starts at sequence number 1 —
/// for resuming an existing WAL directory use
/// [`recovery::recover`](crate::recovery::recover) + [`start_resumed`].
pub fn start_with(config: ServerConfig, monitor: ShardedMonitor) -> std::io::Result<ServerHandle> {
    start_resumed(config, monitor, 1)
}

/// [`start_with`] continuing an existing WAL: `next_seq` is the LSN the
/// next logged request gets (from
/// [`RecoveryStats::next_seq`](crate::recovery::RecoveryStats)).
pub fn start_resumed(
    config: ServerConfig,
    monitor: ShardedMonitor,
    next_seq: u64,
) -> std::io::Result<ServerHandle> {
    let engine = Arc::new(Engine::open(
        monitor,
        config.snapshot_path.clone(),
        config.durability.as_ref(),
        next_seq,
    )?);
    start_service(config, engine)
}

/// Serve an arbitrary [`Service`] — the entry point a replica (or any
/// other request core) uses to get the accept loop, worker pool,
/// backpressure and graceful shutdown without owning an [`Engine`].
pub fn start_service(
    config: ServerConfig,
    service: Arc<dyn Service>,
) -> std::io::Result<ServerHandle> {
    attrition_obs::set_enabled(true);
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let accept_service = Arc::clone(&service);
    let acceptor = std::thread::Builder::new()
        .name("serve-acceptor".into())
        .spawn(move || accept_loop(listener, accept_service, &config))
        .expect("acceptor thread must spawn");
    Ok(ServerHandle {
        addr,
        service,
        acceptor,
    })
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<dyn Service>,
    config: &ServerConfig,
) -> ServerSummary {
    let pool = ThreadPool::new(config.workers, config.queue_capacity);
    let connections = attrition_obs::counter("serve.connections.accepted");
    let rejected = attrition_obs::counter("serve.connections.rejected_busy");
    while !service.shutdown_requested() && !sigint_received() {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_nodelay(true);
                connections.inc();
                // Backpressure: answer saturation with an immediate
                // rejection instead of buffering the connection. The
                // check is exact because this loop is the pool's only
                // producer (see `ThreadPool::is_saturated`).
                if pool.is_saturated() {
                    rejected.inc();
                    let _ = stream.write_all(b"ERR busy\n");
                    continue;
                }
                let conn_service = Arc::clone(&service);
                pool.try_execute(move || handle_connection(stream, &*conn_service))
                    .expect("non-saturated single-producer enqueue cannot fail");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Stop accepting; drain queued + in-flight connections.
    drop(listener);
    pool.shutdown();
    // Shutdown checkpoint + legacy snapshot: failures are surfaced in
    // the summary, not swallowed — the caller must treat a checkpoint
    // failure as a crash and rely on WAL recovery.
    let report = service.shutdown_flush();
    ServerSummary {
        requests: service.requests(),
        errors: service.errors(),
        connections: connections.get(),
        rejected_busy: rejected.get(),
        customers: service.num_customers(),
        snapshot_path: report.snapshot_path,
        snapshot_error: report.snapshot_error,
        checkpoint_error: report.checkpoint_error,
        wal_appends: report.wal_appends,
        wal_fsyncs: report.wal_fsyncs,
        checkpoints: report.checkpoints,
    }
}

fn handle_connection(stream: TcpStream, service: &dyn Service) {
    let active = attrition_obs::gauge("serve.connections.active");
    active.add(1);
    let _ = serve_connection(stream, service);
    active.add(-1);
}

/// One framing attempt from the connection's buffered reader.
enum Frame {
    /// A complete line (newline stripped, possibly empty) is in the
    /// caller's buffer — still raw bytes; the caller validates UTF-8 so
    /// the buffer can be reused frame after frame without reallocating.
    Line,
    /// Client closed the connection.
    Eof,
    /// Idle past the read timeout.
    TimedOut,
    /// The line exceeded [`MAX_LINE_BYTES`]; the rest of it (up to the
    /// next newline) has been discarded.
    TooLong,
}

/// Read one newline-delimited frame with a hard size bound. Unlike
/// `BufRead::read_line`, an oversized frame is consumed and reported as
/// a recoverable variant instead of poisoning the connection — the
/// caller answers `ERR` and keeps serving.
fn read_frame(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> std::io::Result<Frame> {
    buf.clear();
    let mut overflowed = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(Frame::TimedOut)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(Frame::Eof);
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |pos| pos);
        if !overflowed {
            if buf.len() + take > MAX_LINE_BYTES {
                overflowed = true;
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        let consumed = newline.map_or(take, |pos| pos + 1);
        reader.consume(consumed);
        if newline.is_some() {
            if overflowed {
                return Ok(Frame::TooLong);
            }
            return Ok(Frame::Line);
        }
    }
}

/// The per-verb latency histogram name, without a per-request
/// `format!`: the verb set is closed, so the mapping is static.
fn latency_metric(verb: &str) -> &'static str {
    match verb {
        "ping" => "serve.latency.ping",
        "ingest" => "serve.latency.ingest",
        "score" => "serve.latency.score",
        "flush" => "serve.latency.flush",
        "snapshot" => "serve.latency.snapshot",
        "stats" => "serve.latency.stats",
        "shutdown" => "serve.latency.shutdown",
        "parse" => "serve.latency.parse",
        _ => "serve.latency.other",
    }
}

/// Write one response frame — `body` plus the terminating newline —
/// directly to the socket with a vectored write (normally one syscall,
/// no userspace copy into a combined buffer).
fn write_frame(writer: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    let total = body.len() + 1;
    let mut written = 0usize;
    while written < total {
        let result = if written < body.len() {
            writer.write_vectored(&[IoSlice::new(&body[written..]), IoSlice::new(b"\n")])
        } else {
            writer.write(b"\n")
        };
        match result {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole response frame",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// How reading a batch frame's member lines ended.
enum BatchRead {
    /// All `n` members read into the pack, ready to execute.
    Complete,
    /// All `n` member lines were consumed (framing preserved) but at
    /// least one was unusable; the message describes the first one.
    /// Nothing may execute — the whole frame is answered with one `ERR`.
    Invalid(String),
    /// EOF or timeout mid-frame: the batch never fully arrived, so
    /// nothing executes and the connection closes.
    Disconnected,
}

/// Read the `n` member lines of a `BATCH n` frame into `batch_buf` +
/// `bounds` (a [`PackedLines`] pack). Invalid members do not abort the
/// read: all `n` lines are consumed either way, so the stream stays
/// framed and the connection survives a rejected batch.
fn read_batch_members(
    reader: &mut impl BufRead,
    n: usize,
    member: &mut Vec<u8>,
    batch_buf: &mut String,
    bounds: &mut Vec<(usize, usize)>,
    bytes_read: &Counter,
) -> std::io::Result<BatchRead> {
    batch_buf.clear();
    bounds.clear();
    let mut invalid: Option<String> = None;
    for i in 0..n {
        match read_frame(reader, member)? {
            Frame::Eof | Frame::TimedOut => return Ok(BatchRead::Disconnected),
            Frame::TooLong => {
                if invalid.is_none() {
                    invalid = Some(format!(
                        "batch member {i}: line too long (max {MAX_LINE_BYTES} bytes)"
                    ));
                }
            }
            Frame::Line => {
                bytes_read.add(member.len() as u64 + 1);
                match std::str::from_utf8(member) {
                    Err(_) => {
                        if invalid.is_none() {
                            invalid = Some(format!("batch member {i}: request is not valid UTF-8"));
                        }
                    }
                    Ok(line) => {
                        let line = line.trim_end_matches('\r');
                        if parse_batch_header(line).is_some() {
                            if invalid.is_none() {
                                invalid =
                                    Some(format!("batch member {i}: nested BATCH not allowed"));
                            }
                        } else {
                            let start = batch_buf.len();
                            batch_buf.push_str(line);
                            bounds.push((start, batch_buf.len()));
                        }
                    }
                }
            }
        }
    }
    Ok(match invalid {
        Some(message) => BatchRead::Invalid(message),
        None => BatchRead::Complete,
    })
}

fn serve_connection(stream: TcpStream, service: &dyn Service) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Reusable per-connection buffers: the frame line, batch member
    // lines, the packed batch, the response being corked, and the
    // engine's parse/apply scratch. After a few frames these reach
    // steady-state capacity and the INGEST path allocates nothing.
    let mut buf = Vec::new();
    let mut member = Vec::new();
    let mut batch_buf = String::new();
    let mut bounds: Vec<(usize, usize)> = Vec::new();
    let mut scratch = BatchScratch::new();
    let mut out = String::new();
    let bytes_read = attrition_obs::counter("serve.bytes_read");
    let bytes_written = attrition_obs::counter("serve.bytes_written");
    loop {
        if service.shutdown_requested() {
            return Ok(()); // draining: finish after the current request
        }
        out.clear();
        match read_frame(&mut reader, &mut buf)? {
            Frame::Eof => return Ok(()), // client closed
            Frame::TimedOut => {
                attrition_obs::counter("serve.connections.timed_out").inc();
                return Ok(()); // idle past the read timeout
            }
            Frame::TooLong => {
                let _ = write!(out, "ERR line too long (max {MAX_LINE_BYTES} bytes)");
            }
            Frame::Line => {
                bytes_read.add(buf.len() as u64 + 1);
                match std::str::from_utf8(&buf) {
                    Err(_) => out.push_str("ERR request is not valid UTF-8"),
                    Ok(line) => {
                        let line = line.trim_end_matches('\r');
                        if line.is_empty() {
                            continue; // tolerate blank keep-alive lines
                        }
                        match parse_batch_header(line) {
                            Some(Err(ParseError(message))) => {
                                let _ = write!(out, "ERR {message}");
                            }
                            Some(Ok(n)) => {
                                match read_batch_members(
                                    &mut reader,
                                    n,
                                    &mut member,
                                    &mut batch_buf,
                                    &mut bounds,
                                    &bytes_read,
                                )? {
                                    BatchRead::Disconnected => return Ok(()),
                                    BatchRead::Invalid(message) => {
                                        let _ = write!(out, "ERR {message}");
                                    }
                                    BatchRead::Complete => {
                                        let started = Instant::now();
                                        let packed = PackedLines::new(&batch_buf, &bounds);
                                        service.respond_batch(&packed, &mut scratch, &mut out);
                                        attrition_obs::observe_ms(
                                            "serve.latency.batch",
                                            started.elapsed().as_secs_f64() * 1e3,
                                        );
                                    }
                                }
                            }
                            None => {
                                let started = Instant::now();
                                let (verb, response) = service.respond(line);
                                attrition_obs::observe_ms(
                                    latency_metric(verb),
                                    started.elapsed().as_secs_f64() * 1e3,
                                );
                                out.push_str(&response);
                            }
                        }
                    }
                }
            }
        }
        write_frame(&mut writer, out.as_bytes())?;
        bytes_written.add(out.len() as u64 + 1);
        if service.shutdown_requested() {
            return Ok(());
        }
    }
}
