//! The TCP server: accept loop, connection handling, graceful shutdown.
//!
//! One acceptor thread owns the listener; each accepted connection
//! becomes a job on the bounded [`ThreadPool`](crate::pool::ThreadPool).
//! When the pool is saturated the connection is answered `ERR busy` and
//! dropped immediately (see the pool's backpressure contract). A
//! `SHUTDOWN` request — or SIGINT, via [`install_sigint_handler`] —
//! stops the acceptor, drains every in-flight connection (each finishes
//! its current request; idle connections close within the read
//! timeout), writes a checkpoint to the configured snapshot path, and
//! returns a [`ServerSummary`].

use crate::pool::ThreadPool;
use crate::protocol::{format_closed, format_score, ParseError, Request};
use crate::shard::ShardedMonitor;
use attrition_core::{StabilityParams, WindowClosed};
use attrition_store::WindowSpec;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the server needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7711` (`:0` for an ephemeral
    /// port — read it back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of monitor shards (each behind its own lock).
    pub n_shards: usize,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Connections waiting for a worker before `ERR busy` rejections
    /// start.
    pub queue_capacity: usize,
    /// Idle time after which a connection is closed.
    pub read_timeout: Duration,
    /// Where `SNAPSHOT` and shutdown write the checkpoint; `None`
    /// disables checkpointing (`SNAPSHOT` answers `ERR`).
    pub snapshot_path: Option<PathBuf>,
    /// The window grid every shard scores on.
    pub spec: WindowSpec,
    /// Significance parameters.
    pub params: StabilityParams,
    /// Lost products retained per closed-window explanation.
    pub max_explanations: usize,
}

impl ServerConfig {
    /// Defaults sized for a small deployment: 8 shards, 4 workers,
    /// a 64-connection queue, 5 s read timeout, no snapshot path.
    pub fn new(addr: impl Into<String>, spec: WindowSpec, params: StabilityParams) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            n_shards: 8,
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            snapshot_path: None,
            spec,
            params,
            max_explanations: 5,
        }
    }
}

/// What a drained server reports back.
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// Requests served (including ones answered `ERR`).
    pub requests: u64,
    /// Requests answered `ERR` (parse failures, out-of-order ingests, …).
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections rejected with `ERR busy`.
    pub rejected_busy: u64,
    /// Customers tracked at shutdown.
    pub customers: usize,
    /// Where the final checkpoint was written, if anywhere.
    pub snapshot_path: Option<PathBuf>,
}

struct State {
    monitor: ShardedMonitor,
    snapshot_path: Option<PathBuf>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// A running server; dropping the handle does **not** stop it — send
/// `SHUTDOWN`, call [`request_shutdown`](ServerHandle::request_shutdown),
/// or deliver SIGINT, then [`join`](ServerHandle::join).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    acceptor: JoinHandle<ServerSummary>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to drain and exit, as `SHUTDOWN` would.
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for the server to drain and return its summary.
    pub fn join(self) -> ServerSummary {
        self.acceptor
            .join()
            .expect("acceptor thread must not panic")
    }
}

/// Set by the process SIGINT handler; polled by every running server.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Route SIGINT (ctrl-c) into the graceful-shutdown path instead of
/// killing the process mid-request. Call once, before serving.
#[cfg(unix)]
pub fn install_sigint_handler() {
    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        SIGINT_RECEIVED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    // SAFETY: `signal` is libc's (already linked by std); the handler
    // only performs an atomic store, which is async-signal-safe.
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

/// No-op off unix: ctrl-c falls back to process termination.
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

/// Whether SIGINT was delivered since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT_RECEIVED.load(Ordering::SeqCst)
}

/// Bind and serve in background threads; returns once the listener is
/// accepting. Metrics recording is enabled for the process — a scoring
/// server's `STATS` verb is part of its contract.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let monitor = ShardedMonitor::new(
        config.n_shards,
        config.spec,
        config.params,
        config.max_explanations,
    );
    start_with(config, monitor)
}

/// [`start`] with a pre-populated (e.g. checkpoint-restored) monitor.
pub fn start_with(config: ServerConfig, monitor: ShardedMonitor) -> std::io::Result<ServerHandle> {
    attrition_obs::set_enabled(true);
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(State {
        monitor,
        snapshot_path: config.snapshot_path.clone(),
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });
    let accept_state = Arc::clone(&state);
    let acceptor = std::thread::Builder::new()
        .name("serve-acceptor".into())
        .spawn(move || accept_loop(listener, accept_state, &config))
        .expect("acceptor thread must spawn");
    Ok(ServerHandle {
        addr,
        state,
        acceptor,
    })
}

fn accept_loop(listener: TcpListener, state: Arc<State>, config: &ServerConfig) -> ServerSummary {
    let pool = ThreadPool::new(config.workers, config.queue_capacity);
    let connections = attrition_obs::counter("serve.connections.accepted");
    let rejected = attrition_obs::counter("serve.connections.rejected_busy");
    while !state.shutdown.load(Ordering::SeqCst) && !sigint_received() {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_nodelay(true);
                connections.inc();
                // Backpressure: answer saturation with an immediate
                // rejection instead of buffering the connection. The
                // check is exact because this loop is the pool's only
                // producer (see `ThreadPool::is_saturated`).
                if pool.is_saturated() {
                    rejected.inc();
                    let _ = stream.write_all(b"ERR busy\n");
                    continue;
                }
                let conn_state = Arc::clone(&state);
                pool.try_execute(move || handle_connection(stream, &conn_state))
                    .expect("non-saturated single-producer enqueue cannot fail");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Stop accepting; drain queued + in-flight connections.
    drop(listener);
    pool.shutdown();
    let snapshot_path = write_snapshot(&state).ok().flatten();
    ServerSummary {
        requests: state.requests.load(Ordering::Relaxed),
        errors: state.errors.load(Ordering::Relaxed),
        connections: connections.get(),
        rejected_busy: rejected.get(),
        customers: state.monitor.num_customers(),
        snapshot_path,
    }
}

/// Checkpoint to the configured path. `Ok(None)` when no path is set.
fn write_snapshot(state: &State) -> std::io::Result<Option<PathBuf>> {
    let Some(path) = &state.snapshot_path else {
        return Ok(None);
    };
    std::fs::write(path, state.monitor.snapshot())?;
    Ok(Some(path.clone()))
}

fn handle_connection(stream: TcpStream, state: &State) {
    let active = attrition_obs::gauge("serve.connections.active");
    active.add(1);
    let _ = serve_connection(stream, state);
    active.add(-1);
}

fn serve_connection(stream: TcpStream, state: &State) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let bytes_read = attrition_obs::counter("serve.bytes_read");
    let bytes_written = attrition_obs::counter("serve.bytes_written");
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return Ok(()); // draining: finish after the current request
        }
        line.clear();
        let n = match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                attrition_obs::counter("serve.connections.timed_out").inc();
                return Ok(()); // idle past the read timeout
            }
            Err(e) => return Err(e),
        };
        bytes_read.add(n as u64);
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        let started = Instant::now();
        let (verb, response) = respond(state, trimmed);
        state.requests.fetch_add(1, Ordering::Relaxed);
        attrition_obs::counter("serve.requests").inc();
        if response.starts_with("ERR") {
            state.errors.fetch_add(1, Ordering::Relaxed);
            attrition_obs::counter("serve.errors").inc();
        }
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        bytes_written.add(response.len() as u64 + 1);
        attrition_obs::observe_ms(
            &format!("serve.latency.{verb}"),
            started.elapsed().as_secs_f64() * 1e3,
        );
        if state.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Execute one request; returns `(verb, response)` where the response
/// may span multiple lines (`OK <n>` + `CLOSED` lines) but never ends
/// with a newline (the caller appends the final one).
fn respond(state: &State, line: &str) -> (&'static str, String) {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(ParseError(message)) => return ("parse", format!("ERR {message}")),
    };
    let verb = request.verb();
    let response = match request {
        Request::Ping => "PONG".to_owned(),
        Request::Ingest(customer, date, items) => {
            let basket = attrition_types::Basket::new(items);
            match state.monitor.ingest(customer, date, &basket) {
                Ok(closed) => closed_response(&closed),
                Err(out_of_order) => format!("ERR {out_of_order}"),
            }
        }
        Request::Score(customer) => match state.monitor.preview(customer) {
            Some(point) => format_score(customer, &point),
            None => format!("ERR unknown customer {}", customer.raw()),
        },
        Request::Flush(date) => closed_response(&state.monitor.flush_until(date)),
        Request::Snapshot => match write_snapshot(state) {
            Ok(Some(path)) => {
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                format!("OK {bytes} {}", path.display())
            }
            Ok(None) => "ERR no snapshot path configured".to_owned(),
            Err(e) => format!("ERR snapshot failed: {e}"),
        },
        Request::Stats => {
            for (shard, customers) in state.monitor.customers_per_shard().iter().enumerate() {
                attrition_obs::gauge(&format!("serve.shard.{shard}.customers"))
                    .set(*customers as i64);
            }
            format!("STATS {}", attrition_obs::global().snapshot().to_json())
        }
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            "OK draining".to_owned()
        }
    };
    (verb, response)
}

fn closed_response(closed: &[WindowClosed]) -> String {
    let mut out = format!("OK {}", closed.len());
    for window in closed {
        out.push('\n');
        out.push_str(&format_closed(window));
    }
    out
}
