//! The TCP server: accept loop, connection handling, graceful shutdown.
//!
//! One acceptor thread owns the listener; each accepted connection
//! becomes a job on the bounded [`ThreadPool`](crate::pool::ThreadPool).
//! When the pool is saturated the connection is answered `ERR busy` and
//! dropped immediately (see the pool's backpressure contract). A
//! `SHUTDOWN` request — or SIGINT, via [`install_sigint_handler`] —
//! stops the acceptor, drains every in-flight connection (each finishes
//! its current request; idle connections close within the read
//! timeout), writes a final checkpoint, and returns a [`ServerSummary`].
//!
//! ## Durability
//!
//! With a [`DurabilityConfig`] set, every mutating request (`INGEST`,
//! `FLUSH`) is appended to the [write-ahead log](crate::wal) *before*
//! it is applied and acknowledged, and the full state is periodically
//! [checkpointed](crate::checkpoint) crash-atomically, after which the
//! WAL is truncated. The durability lock is held across append + apply,
//! so the log order equals the apply order and a checkpoint always cuts
//! at an exact LSN — mutating requests serialize on that lock (reads
//! do not), which is the honest cost of a single log file: under
//! `--sync-policy always` the fsync, not the lock, dominates. Group
//! commit across workers is future work (DESIGN §10).

use crate::checkpoint;
use crate::faults::FaultPlan;
use crate::pool::ThreadPool;
use crate::protocol::{format_closed, format_score, ParseError, Request};
use crate::shard::ShardedMonitor;
use crate::wal::{SyncPolicy, Wal, WAL_FILE};
use attrition_core::{StabilityParams, WindowClosed};
use attrition_store::WindowSpec;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the server needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7711` (`:0` for an ephemeral
    /// port — read it back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of monitor shards (each behind its own lock).
    pub n_shards: usize,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Connections waiting for a worker before `ERR busy` rejections
    /// start.
    pub queue_capacity: usize,
    /// Idle time after which a connection is closed.
    pub read_timeout: Duration,
    /// Where `SNAPSHOT` and shutdown write the legacy single-file
    /// snapshot; `None` disables it (`SNAPSHOT` answers `ERR`). The
    /// write is atomic (tmp + fsync + rename) but carries no WAL — for
    /// real durability configure [`durability`](ServerConfig::durability).
    pub snapshot_path: Option<PathBuf>,
    /// WAL + periodic checkpointing; `None` runs the server in-memory
    /// (the pre-durability behavior).
    pub durability: Option<DurabilityConfig>,
    /// The window grid every shard scores on.
    pub spec: WindowSpec,
    /// Significance parameters.
    pub params: StabilityParams,
    /// Lost products retained per closed-window explanation.
    pub max_explanations: usize,
}

/// Configuration of the durability subsystem (WAL + checkpoints).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `checkpoint-*.ckpt` (created if
    /// missing).
    pub wal_dir: PathBuf,
    /// When appended WAL records are fsynced (see [`SyncPolicy`] for
    /// the per-policy ack guarantee).
    pub sync_policy: SyncPolicy,
    /// Checkpoint after this many logged requests (0 disables the
    /// count trigger).
    pub checkpoint_every_requests: u64,
    /// Checkpoint when this much time passed since the last one and at
    /// least one request was logged (`None` disables the time trigger).
    pub checkpoint_every: Option<Duration>,
    /// Checkpoints retained after rotation (older ones are pruned; ≥ 1).
    pub keep_checkpoints: usize,
    /// Fault-injection schedule for the WAL (tests only; `None` in
    /// production).
    pub fault_plan: Option<FaultPlan>,
}

impl DurabilityConfig {
    /// Defaults: fsync every append, checkpoint every 1024 logged
    /// requests or 30 s (whichever comes first), keep 2 checkpoints.
    pub fn new(wal_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            wal_dir: wal_dir.into(),
            sync_policy: SyncPolicy::Always,
            checkpoint_every_requests: 1024,
            checkpoint_every: Some(Duration::from_secs(30)),
            keep_checkpoints: 2,
            fault_plan: None,
        }
    }
}

impl ServerConfig {
    /// Defaults sized for a small deployment: 8 shards, 4 workers,
    /// a 64-connection queue, 5 s read timeout, no snapshot path.
    pub fn new(addr: impl Into<String>, spec: WindowSpec, params: StabilityParams) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            n_shards: 8,
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            snapshot_path: None,
            durability: None,
            spec,
            params,
            max_explanations: 5,
        }
    }
}

/// What a drained server reports back.
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// Requests served (including ones answered `ERR`).
    pub requests: u64,
    /// Requests answered `ERR` (parse failures, out-of-order ingests, …).
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections rejected with `ERR busy`.
    pub rejected_busy: u64,
    /// Customers tracked at shutdown.
    pub customers: usize,
    /// Where the final legacy snapshot was written, if anywhere.
    pub snapshot_path: Option<PathBuf>,
    /// Why the final snapshot write failed, if it did (also counted on
    /// `serve.snapshot.errors`).
    pub snapshot_error: Option<String>,
    /// Why the shutdown checkpoint failed, if it did. A durable server
    /// exiting with this set must be treated as a crash: the WAL still
    /// holds the tail and recovery will replay it.
    pub checkpoint_error: Option<String>,
    /// WAL records appended over this server's lifetime.
    pub wal_appends: u64,
    /// WAL fsyncs issued over this server's lifetime.
    pub wal_fsyncs: u64,
    /// Checkpoints written (periodic + shutdown).
    pub checkpoints: u64,
}

/// The durability state behind one lock: holding it across WAL append
/// *and* monitor apply keeps log order identical to apply order, and
/// makes every checkpoint an exact cut at `wal.last_seq()`.
struct Durable {
    wal: Wal,
    dir: PathBuf,
    checkpoint_every_requests: u64,
    checkpoint_every: Option<Duration>,
    keep_checkpoints: usize,
    since_checkpoint: u64,
    last_checkpoint: Instant,
    checkpoints_written: u64,
}

impl Durable {
    /// Bookkeeping after a logged+applied request: fire a periodic
    /// checkpoint when a trigger is due. Checkpoint failures degrade to
    /// a counter + log line — the WAL still holds everything, so
    /// serving beats dying; the next trigger retries.
    fn after_logged(&mut self, monitor: &ShardedMonitor) {
        self.since_checkpoint += 1;
        let due_count = self.checkpoint_every_requests > 0
            && self.since_checkpoint >= self.checkpoint_every_requests;
        let due_time = self
            .checkpoint_every
            .is_some_and(|every| self.last_checkpoint.elapsed() >= every);
        if !(due_count || due_time) {
            return;
        }
        if let Err(e) = self.checkpoint_now(monitor) {
            attrition_obs::counter("serve.checkpoint.errors").inc();
            eprintln!("serve: periodic checkpoint failed (wal retained): {e}");
            // Reset the triggers so a persistent failure retries once
            // per period instead of once per request.
            self.since_checkpoint = 0;
            self.last_checkpoint = Instant::now();
        }
    }

    /// Snapshot → atomic checkpoint write → prune → WAL truncation.
    fn checkpoint_now(&mut self, monitor: &ShardedMonitor) -> std::io::Result<()> {
        let started = Instant::now();
        // Everything the checkpoint covers must be durable first, or a
        // crash right after truncation could lose acked-but-buffered
        // records under `interval`/`never` policies.
        self.wal.sync()?;
        let lsn = self.wal.last_seq();
        checkpoint::write(&self.dir, lsn, &monitor.snapshot())?;
        let _ = checkpoint::prune(&self.dir, self.keep_checkpoints);
        self.wal.truncate()?;
        self.since_checkpoint = 0;
        self.last_checkpoint = Instant::now();
        self.checkpoints_written += 1;
        attrition_obs::counter("serve.checkpoint.writes").inc();
        attrition_obs::observe_ms(
            "serve.checkpoint.duration_ms",
            started.elapsed().as_secs_f64() * 1e3,
        );
        attrition_obs::gauge("serve.checkpoint.lsn").set(lsn as i64);
        Ok(())
    }
}

struct State {
    monitor: ShardedMonitor,
    snapshot_path: Option<PathBuf>,
    durable: Option<Mutex<Durable>>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
}

fn lock_durable(durable: &Mutex<Durable>) -> MutexGuard<'_, Durable> {
    durable.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// A running server; dropping the handle does **not** stop it — send
/// `SHUTDOWN`, call [`request_shutdown`](ServerHandle::request_shutdown),
/// or deliver SIGINT, then [`join`](ServerHandle::join).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    acceptor: JoinHandle<ServerSummary>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to drain and exit, as `SHUTDOWN` would.
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for the server to drain and return its summary.
    pub fn join(self) -> ServerSummary {
        self.acceptor
            .join()
            .expect("acceptor thread must not panic")
    }
}

/// Set by the process SIGINT handler; polled by every running server.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Route SIGINT (ctrl-c) into the graceful-shutdown path instead of
/// killing the process mid-request. Call once, before serving.
#[cfg(unix)]
pub fn install_sigint_handler() {
    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        SIGINT_RECEIVED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    // SAFETY: `signal` is libc's (already linked by std); the handler
    // only performs an atomic store, which is async-signal-safe.
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

/// No-op off unix: ctrl-c falls back to process termination.
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

/// Whether SIGINT was delivered since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT_RECEIVED.load(Ordering::SeqCst)
}

/// Bind and serve in background threads; returns once the listener is
/// accepting. Metrics recording is enabled for the process — a scoring
/// server's `STATS` verb is part of its contract.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let monitor = ShardedMonitor::new(
        config.n_shards,
        config.spec,
        config.params,
        config.max_explanations,
    );
    start_with(config, monitor)
}

/// [`start`] with a pre-populated (e.g. checkpoint-restored) monitor.
/// When durability is configured, the WAL starts at sequence number 1 —
/// for resuming an existing WAL directory use
/// [`recovery::recover`](crate::recovery::recover) + [`start_resumed`].
pub fn start_with(config: ServerConfig, monitor: ShardedMonitor) -> std::io::Result<ServerHandle> {
    start_resumed(config, monitor, 1)
}

/// [`start_with`] continuing an existing WAL: `next_seq` is the LSN the
/// next logged request gets (from
/// [`RecoveryStats::next_seq`](crate::recovery::RecoveryStats)).
pub fn start_resumed(
    config: ServerConfig,
    monitor: ShardedMonitor,
    next_seq: u64,
) -> std::io::Result<ServerHandle> {
    attrition_obs::set_enabled(true);
    let durable = match &config.durability {
        Some(dcfg) => {
            std::fs::create_dir_all(&dcfg.wal_dir)?;
            let wal = Wal::open_with_faults(
                &dcfg.wal_dir.join(WAL_FILE),
                dcfg.sync_policy,
                next_seq,
                dcfg.fault_plan.clone().unwrap_or_default(),
            )?;
            Some(Mutex::new(Durable {
                wal,
                dir: dcfg.wal_dir.clone(),
                checkpoint_every_requests: dcfg.checkpoint_every_requests,
                checkpoint_every: dcfg.checkpoint_every,
                keep_checkpoints: dcfg.keep_checkpoints.max(1),
                since_checkpoint: 0,
                last_checkpoint: Instant::now(),
                checkpoints_written: 0,
            }))
        }
        None => None,
    };
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(State {
        monitor,
        snapshot_path: config.snapshot_path.clone(),
        durable,
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });
    let accept_state = Arc::clone(&state);
    let acceptor = std::thread::Builder::new()
        .name("serve-acceptor".into())
        .spawn(move || accept_loop(listener, accept_state, &config))
        .expect("acceptor thread must spawn");
    Ok(ServerHandle {
        addr,
        state,
        acceptor,
    })
}

fn accept_loop(listener: TcpListener, state: Arc<State>, config: &ServerConfig) -> ServerSummary {
    let pool = ThreadPool::new(config.workers, config.queue_capacity);
    let connections = attrition_obs::counter("serve.connections.accepted");
    let rejected = attrition_obs::counter("serve.connections.rejected_busy");
    while !state.shutdown.load(Ordering::SeqCst) && !sigint_received() {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_nodelay(true);
                connections.inc();
                // Backpressure: answer saturation with an immediate
                // rejection instead of buffering the connection. The
                // check is exact because this loop is the pool's only
                // producer (see `ThreadPool::is_saturated`).
                if pool.is_saturated() {
                    rejected.inc();
                    let _ = stream.write_all(b"ERR busy\n");
                    continue;
                }
                let conn_state = Arc::clone(&state);
                pool.try_execute(move || handle_connection(stream, &conn_state))
                    .expect("non-saturated single-producer enqueue cannot fail");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Stop accepting; drain queued + in-flight connections.
    drop(listener);
    pool.shutdown();
    // Shutdown checkpoint: the drained state, durably. A failure is
    // surfaced (summary + counter), not swallowed — the caller must
    // treat it as a crash and rely on WAL recovery.
    let mut checkpoint_error = None;
    let (mut wal_appends, mut wal_fsyncs, mut checkpoints) = (0, 0, 0);
    if let Some(durable) = &state.durable {
        let mut d = lock_durable(durable);
        if let Err(e) = d.checkpoint_now(&state.monitor) {
            attrition_obs::counter("serve.checkpoint.errors").inc();
            eprintln!("serve: shutdown checkpoint failed (wal retained): {e}");
            checkpoint_error = Some(e.to_string());
        }
        wal_appends = d.wal.appends();
        wal_fsyncs = d.wal.fsyncs();
        checkpoints = d.checkpoints_written;
    }
    let (snapshot_path, snapshot_error) = match write_snapshot(&state) {
        Ok(path) => (path, None),
        Err(e) => {
            eprintln!("serve: shutdown snapshot failed: {e}");
            (None, Some(e.to_string()))
        }
    };
    ServerSummary {
        requests: state.requests.load(Ordering::Relaxed),
        errors: state.errors.load(Ordering::Relaxed),
        connections: connections.get(),
        rejected_busy: rejected.get(),
        customers: state.monitor.num_customers(),
        snapshot_path,
        snapshot_error,
        checkpoint_error,
        wal_appends,
        wal_fsyncs,
        checkpoints,
    }
}

/// Write the legacy single-file snapshot to the configured path,
/// atomically (tmp + fsync + rename). `Ok(None)` when no path is set;
/// errors are counted on `serve.snapshot.errors` and propagated, never
/// swallowed.
fn write_snapshot(state: &State) -> std::io::Result<Option<PathBuf>> {
    let Some(path) = &state.snapshot_path else {
        return Ok(None);
    };
    if let Err(e) = checkpoint::atomic_write(path, state.monitor.snapshot().as_bytes()) {
        attrition_obs::counter("serve.snapshot.errors").inc();
        return Err(e);
    }
    Ok(Some(path.clone()))
}

/// Run a mutating request through the WAL (when durability is on) and
/// apply it, under one lock — append first, apply second, ack last. An
/// append failure means nothing was applied and the client gets `ERR`.
fn logged<R>(state: &State, op: &str, apply: impl FnOnce() -> R) -> Result<R, String> {
    let Some(durable) = &state.durable else {
        return Ok(apply());
    };
    let mut d = lock_durable(durable);
    if let Err(e) = d.wal.append(op) {
        attrition_obs::counter("serve.wal.errors").inc();
        return Err(format!("wal append failed: {e}"));
    }
    let result = apply();
    d.after_logged(&state.monitor);
    Ok(result)
}

fn handle_connection(stream: TcpStream, state: &State) {
    let active = attrition_obs::gauge("serve.connections.active");
    active.add(1);
    let _ = serve_connection(stream, state);
    active.add(-1);
}

fn serve_connection(stream: TcpStream, state: &State) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let bytes_read = attrition_obs::counter("serve.bytes_read");
    let bytes_written = attrition_obs::counter("serve.bytes_written");
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return Ok(()); // draining: finish after the current request
        }
        line.clear();
        let n = match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                attrition_obs::counter("serve.connections.timed_out").inc();
                return Ok(()); // idle past the read timeout
            }
            Err(e) => return Err(e),
        };
        bytes_read.add(n as u64);
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        let started = Instant::now();
        let (verb, response) = respond(state, trimmed);
        state.requests.fetch_add(1, Ordering::Relaxed);
        attrition_obs::counter("serve.requests").inc();
        if response.starts_with("ERR") {
            state.errors.fetch_add(1, Ordering::Relaxed);
            attrition_obs::counter("serve.errors").inc();
        }
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        bytes_written.add(response.len() as u64 + 1);
        attrition_obs::observe_ms(
            &format!("serve.latency.{verb}"),
            started.elapsed().as_secs_f64() * 1e3,
        );
        if state.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Execute one request; returns `(verb, response)` where the response
/// may span multiple lines (`OK <n>` + `CLOSED` lines) but never ends
/// with a newline (the caller appends the final one).
fn respond(state: &State, line: &str) -> (&'static str, String) {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(ParseError(message)) => return ("parse", format!("ERR {message}")),
    };
    let verb = request.verb();
    let response = match request {
        Request::Ping => "PONG".to_owned(),
        Request::Ingest(customer, date, items) => {
            // Canonical op line, rebuilt (not echoed) so the WAL holds
            // exactly what `Request::parse` will re-read at recovery.
            let mut op = format!("INGEST {} {date}", customer.raw());
            for item in &items {
                op.push(' ');
                op.push_str(&item.raw().to_string());
            }
            let basket = attrition_types::Basket::new(items);
            match logged(state, &op, || state.monitor.ingest(customer, date, &basket)) {
                Ok(Ok(closed)) => closed_response(&closed),
                Ok(Err(out_of_order)) => format!("ERR {out_of_order}"),
                Err(wal_error) => format!("ERR {wal_error}"),
            }
        }
        Request::Score(customer) => match state.monitor.preview(customer) {
            Some(point) => format_score(customer, &point),
            None => format!("ERR unknown customer {}", customer.raw()),
        },
        Request::Flush(date) => {
            match logged(state, &format!("FLUSH {date}"), || {
                state.monitor.flush_until(date)
            }) {
                Ok(closed) => closed_response(&closed),
                Err(wal_error) => format!("ERR {wal_error}"),
            }
        }
        Request::Snapshot => match write_snapshot(state) {
            Ok(Some(path)) => {
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                format!("OK {bytes} {}", path.display())
            }
            Ok(None) => "ERR no snapshot path configured".to_owned(),
            Err(e) => format!("ERR snapshot failed: {e}"),
        },
        Request::Stats => {
            for (shard, customers) in state.monitor.customers_per_shard().iter().enumerate() {
                attrition_obs::gauge(&format!("serve.shard.{shard}.customers"))
                    .set(*customers as i64);
            }
            format!("STATS {}", attrition_obs::global().snapshot().to_json())
        }
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            "OK draining".to_owned()
        }
    };
    (verb, response)
}

fn closed_response(closed: &[WindowClosed]) -> String {
    let mut out = format!("OK {}", closed.len());
    for window in closed {
        out.push('\n');
        out.push_str(&format_closed(window));
    }
    out
}
