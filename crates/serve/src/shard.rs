//! Hash-sharded stability monitors.
//!
//! Customers are routed to one of `n` independent [`StabilityMonitor`]s
//! by a multiplicative hash of their id, each shard behind its own
//! mutex — two receipts for different shards never contend, so ingest
//! throughput scales with the shard count while per-customer scoring
//! stays bit-identical to a single monitor (customer states are
//! independent by construction; asserted by the 1-vs-8-shard test).

use attrition_core::incremental::WindowClosed;
use attrition_core::{RestoreError, StabilityMonitor, StabilityParams, StabilityPoint};
use attrition_store::WindowSpec;
use attrition_types::{Basket, CustomerId, Date};
use std::sync::{Mutex, MutexGuard};

/// Fibonacci-hash multiplier (2^64 / φ), spreads sequential ids.
const HASH: u64 = 0x9E37_79B9_7F4A_7C15;

/// An ingest was rejected because the receipt predates the customer's
/// current window. Reported to the client as `ERR`; the shard is left
/// untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfOrder {
    /// The offending customer.
    pub customer: CustomerId,
    /// The rejected receipt's window.
    pub got: u32,
    /// The customer's current (minimum acceptable) window.
    pub current: u32,
}

impl std::fmt::Display for OutOfOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out-of-order receipt for customer {}: window {} after {}",
            self.customer, self.got, self.current
        )
    }
}

impl std::error::Error for OutOfOrder {}

/// `n` independent monitors with deterministic customer routing.
#[derive(Debug)]
pub struct ShardedMonitor {
    shards: Vec<Mutex<StabilityMonitor>>,
}

/// A mutex whose holder panicked mid-operation left the shard in an
/// unknown intermediate state only for *that customer's* entry; every
/// operation here either completes or returns early before mutating, so
/// recovering the poisoned guard is sound.
fn lock(shard: &Mutex<StabilityMonitor>) -> MutexGuard<'_, StabilityMonitor> {
    shard.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl ShardedMonitor {
    /// `n_shards` empty monitors on a shared grid.
    pub fn new(
        n_shards: usize,
        spec: WindowSpec,
        params: StabilityParams,
        max_explanations: usize,
    ) -> ShardedMonitor {
        assert!(n_shards > 0, "need at least one shard");
        ShardedMonitor {
            shards: (0..n_shards)
                .map(|_| {
                    Mutex::new(
                        StabilityMonitor::new(spec, params).with_max_explanations(max_explanations),
                    )
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a customer routes to. Deterministic across restarts
    /// (pure function of the id and the shard count).
    pub fn shard_of(&self, customer: CustomerId) -> usize {
        shard_of(customer, self.shards.len())
    }

    /// Ingest one receipt, locking only the owning shard. Out-of-order
    /// receipts (per customer) are rejected instead of panicking the
    /// worker, so one misbehaving client cannot poison a shard.
    pub fn ingest(
        &self,
        customer: CustomerId,
        date: Date,
        basket: &Basket,
    ) -> Result<Vec<WindowClosed>, OutOfOrder> {
        let mut shard = lock(&self.shards[self.shard_of(customer)]);
        Self::check_order(&shard, customer, date)?;
        Ok(shard.ingest(customer, date, basket))
    }

    /// [`ingest`](ShardedMonitor::ingest) over a pre-sorted,
    /// deduplicated item slice — the batch path's entry point, which
    /// reuses one scratch buffer instead of building a [`Basket`] per
    /// receipt. Scores are bit-identical to `ingest`.
    pub fn ingest_sorted(
        &self,
        customer: CustomerId,
        date: Date,
        items: &[attrition_types::ItemId],
    ) -> Result<Vec<WindowClosed>, OutOfOrder> {
        let mut shard = lock(&self.shards[self.shard_of(customer)]);
        Self::check_order(&shard, customer, date)?;
        Ok(shard.ingest_sorted(customer, date, items))
    }

    /// The out-of-order guard shared by both ingest paths. Uses the
    /// cheap [`StabilityMonitor::current_window`] accessor — a full
    /// `preview()` clones pending items and computes significance,
    /// which is pure waste on every in-order receipt.
    fn check_order(
        shard: &StabilityMonitor,
        customer: CustomerId,
        date: Date,
    ) -> Result<(), OutOfOrder> {
        if let (Some(window), Some(current)) =
            (shard.spec().window_of(date), shard.current_window(customer))
        {
            if window.raw() < current {
                return Err(OutOfOrder {
                    customer,
                    got: window.raw(),
                    current,
                });
            }
        }
        Ok(())
    }

    /// Live stability of a customer's current window.
    pub fn preview(&self, customer: CustomerId) -> Option<StabilityPoint> {
        lock(&self.shards[self.shard_of(customer)]).preview(customer)
    }

    /// Close every customer's windows up to (excluding) the window
    /// containing `now`, across all shards. The result is normalized to
    /// ascending `(customer, window)` order — identical to what a
    /// single-shard monitor emits from its own `flush_until`.
    pub fn flush_until(&self, now: Date) -> Vec<WindowClosed> {
        let mut closed: Vec<WindowClosed> = Vec::new();
        for shard in &self.shards {
            closed.extend(lock(shard).flush_until(now));
        }
        closed.sort_by_key(|c| (c.customer, c.point.window));
        closed
    }

    /// Customers tracked across all shards.
    pub fn num_customers(&self) -> usize {
        self.shards.iter().map(|s| lock(s).num_customers()).sum()
    }

    /// Customers tracked per shard (for gauges).
    pub fn customers_per_shard(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| lock(s).num_customers())
            .collect()
    }

    /// One checkpoint for the whole sharded state, in the single-monitor
    /// [`StabilityMonitor::snapshot`] format: the shared header, then
    /// every customer's block in ascending customer order — byte-for-byte
    /// what one monitor holding all customers would write. Shards are
    /// locked one at a time (the checkpoint is per-customer consistent,
    /// not a global point-in-time cut; take it after a drain for that).
    pub fn snapshot(&self) -> String {
        let mut header: Option<String> = None;
        let mut blocks: Vec<(u64, String)> = Vec::new();
        for shard in &self.shards {
            let doc = lock(shard).snapshot();
            let mut lines = doc.lines();
            let shard_header = lines.next().unwrap_or_default().to_owned();
            let header = header.get_or_insert(shard_header.clone());
            debug_assert_eq!(*header, shard_header, "shards disagree on the grid");
            let mut current: Option<(u64, String)> = None;
            for line in lines {
                if line.starts_with("c,") {
                    if let Some(done) = current.take() {
                        blocks.push(done);
                    }
                    let id = line
                        .split(',')
                        .nth(1)
                        .and_then(|v| v.parse().ok())
                        .expect("snapshot customer rows carry the id");
                    current = Some((id, String::new()));
                }
                let (_, block) = current
                    .as_mut()
                    .expect("snapshot body rows follow a customer row");
                block.push_str(line);
                block.push('\n');
            }
            blocks.extend(current.take());
        }
        blocks.sort_by_key(|&(id, _)| id);
        let mut out = header.unwrap_or_default();
        out.push('\n');
        for (_, block) in blocks {
            out.push_str(&block);
        }
        out
    }

    /// One *binary* checkpoint for the whole sharded state, in the
    /// single-monitor [`StabilityMonitor::snapshot_bytes`] format —
    /// byte-for-byte what one monitor holding all customers would
    /// write. Unlike the text [`snapshot`](ShardedMonitor::snapshot),
    /// all shards are locked simultaneously (in index order, so
    /// concurrent callers cannot deadlock), making the cut a global
    /// point in time; customer blocks merge across shards without
    /// re-encoding because they are self-delimiting and sorted.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let guards: Vec<MutexGuard<'_, StabilityMonitor>> = self.shards.iter().map(lock).collect();
        StabilityMonitor::merge_snapshot_bytes(guards.iter().map(|g| &**g))
    }

    /// Fan one monitor's customers out across `n_shards` shards using
    /// the standard routing; the inverse of what [`snapshot`] merges.
    ///
    /// [`snapshot`]: ShardedMonitor::snapshot
    pub fn from_monitor(monitor: StabilityMonitor, n_shards: usize) -> ShardedMonitor {
        assert!(n_shards > 0, "need at least one shard");
        let parts = monitor.partition(n_shards, |customer| shard_of(customer, n_shards));
        ShardedMonitor {
            shards: parts.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Restore a checkpoint (single-monitor format, e.g. written by
    /// [`ShardedMonitor::snapshot`]) across `n_shards` shards. The shard
    /// count is free to differ from the writing server's — routing is
    /// recomputed per customer.
    pub fn restore(text: &str, n_shards: usize) -> Result<ShardedMonitor, RestoreError> {
        Ok(ShardedMonitor::from_monitor(
            StabilityMonitor::restore(text)?,
            n_shards,
        ))
    }

    /// [`restore`](ShardedMonitor::restore) from either snapshot
    /// format, detected by leading bytes (see
    /// [`StabilityMonitor::restore_any`]).
    pub fn restore_any(bytes: &[u8], n_shards: usize) -> Result<ShardedMonitor, RestoreError> {
        Ok(ShardedMonitor::from_monitor(
            StabilityMonitor::restore_any(bytes)?,
            n_shards,
        ))
    }
}

fn shard_of(customer: CustomerId, n_shards: usize) -> usize {
    (customer.raw().wrapping_mul(HASH) >> 32) as usize % n_shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn sharded(n: usize) -> ShardedMonitor {
        ShardedMonitor::new(
            n,
            WindowSpec::months(d(2012, 5, 1), 1),
            StabilityParams::PAPER,
            5,
        )
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let s = sharded(8);
        for raw in 0..1000u64 {
            let c = CustomerId::new(raw);
            let shard = s.shard_of(c);
            assert!(shard < 8);
            assert_eq!(shard, s.shard_of(c));
        }
    }

    #[test]
    fn routing_spreads_sequential_ids() {
        let s = sharded(8);
        let mut counts = [0usize; 8];
        for raw in 0..8000u64 {
            counts[s.shard_of(CustomerId::new(raw))] += 1;
        }
        // Every shard sees a reasonable share of dense sequential ids.
        for (shard, &n) in counts.iter().enumerate() {
            assert!(n > 500, "shard {shard} got only {n}/8000 customers");
        }
    }

    #[test]
    fn ingest_and_preview_route_to_the_same_shard() {
        let s = sharded(4);
        let c = CustomerId::new(42);
        s.ingest(c, d(2012, 5, 2), &Basket::from_raw(&[1, 2]))
            .unwrap();
        let p = s.preview(c).expect("customer exists after ingest");
        assert_eq!(p.window.raw(), 0);
        assert_eq!(s.num_customers(), 1);
        assert_eq!(s.customers_per_shard().iter().sum::<usize>(), 1);
    }

    #[test]
    fn out_of_order_rejected_not_panicking() {
        let s = sharded(4);
        let c = CustomerId::new(7);
        s.ingest(c, d(2012, 7, 2), &Basket::from_raw(&[1])).unwrap();
        let err = s
            .ingest(c, d(2012, 5, 2), &Basket::from_raw(&[1]))
            .unwrap_err();
        assert_eq!(err.customer, c);
        assert!(err.got < err.current);
        // The shard still works after the rejection.
        assert!(s.ingest(c, d(2012, 8, 2), &Basket::from_raw(&[2])).is_ok());
    }

    #[test]
    fn snapshot_merges_shards_in_customer_order() {
        let s = sharded(4);
        for raw in [9u64, 3, 17, 1] {
            s.ingest(CustomerId::new(raw), d(2012, 5, 2), &Basket::from_raw(&[1]))
                .unwrap();
        }
        let snap = s.snapshot();
        let customer_rows: Vec<&str> = snap.lines().filter(|l| l.starts_with("c,")).collect();
        assert_eq!(customer_rows.len(), 4);
        let ids: Vec<u64> = customer_rows
            .iter()
            .map(|r| r.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(ids, vec![1, 3, 9, 17]);
    }

    #[test]
    fn snapshot_restore_across_different_shard_counts() {
        let s = sharded(4);
        for raw in 0..20u64 {
            s.ingest(
                CustomerId::new(raw),
                d(2012, 5, 2),
                &Basket::from_raw(&[1, 2]),
            )
            .unwrap();
            s.ingest(CustomerId::new(raw), d(2012, 6, 2), &Basket::from_raw(&[1]))
                .unwrap();
        }
        let snap = s.snapshot();
        for n in [1usize, 3, 8] {
            let restored = ShardedMonitor::restore(&snap, n).unwrap();
            assert_eq!(restored.num_customers(), 20);
            for raw in 0..20u64 {
                let c = CustomerId::new(raw);
                let a = s.preview(c).unwrap();
                let b = restored.preview(c).unwrap();
                assert_eq!(a.window, b.window);
                assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
            // The restored state writes the identical checkpoint.
            assert_eq!(restored.snapshot(), snap);
        }
    }

    #[test]
    fn flush_order_matches_single_monitor() {
        let receipts: Vec<(u64, Date, Vec<u32>)> = (0..30u64)
            .map(|raw| (raw, d(2012, 5, 2), vec![1, (raw % 5) as u32 + 2]))
            .collect();
        let single = sharded(1);
        let many = sharded(8);
        for (raw, date, items) in &receipts {
            for s in [&single, &many] {
                s.ingest(CustomerId::new(*raw), *date, &Basket::from_raw(items))
                    .unwrap();
            }
        }
        let a = single.flush_until(d(2012, 8, 1));
        let b = many.flush_until(d(2012, 8, 1));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.customer, y.customer);
            assert_eq!(x.point.window, y.point.window);
            assert_eq!(x.point.value.to_bits(), y.point.value.to_bits());
        }
    }
}
