//! The write-ahead log: length+CRC32-framed records, configurable sync.
//!
//! Every mutating request (`INGEST`, `FLUSH`) is appended here *before*
//! it is applied to the monitors and acknowledged, so an acked request
//! survives a crash (to the extent the [`SyncPolicy`] promises — see
//! DESIGN §10 for the exact contract per policy).
//!
//! ## On-disk format
//!
//! A log is a sequence of frames, nothing else — no file header, so an
//! empty file is a valid (empty) log and truncation to any frame
//! boundary yields a valid log:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload: len bytes           │
//! └────────────┴────────────┴──────────────────────────────┘
//! payload = seq: u64 LE ++ op: UTF-8 bytes (a protocol line,
//!           e.g. "INGEST 7 2012-05-02 1 2")
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. Sequence numbers (LSNs)
//! start at 1, increase by 1 per record, and stay monotonic across
//! checkpoint truncations — replay skips records at or below the
//! checkpoint LSN, which makes a crash *between* checkpoint rename and
//! log truncation harmless (idempotent replay).
//!
//! ## Torn tails
//!
//! A crash mid-write leaves a partial frame (or a frame whose CRC does
//! not match) at the end of the file. [`read_records`] stops at the
//! first invalid frame and reports how many trailing bytes are
//! unaccounted for; [`truncate_to_valid`] chops them off so the next
//! append starts on a clean boundary. Anything after the first invalid
//! frame is unreachable by construction — frames carry no resync
//! marker — which is exactly the prefix-durability a WAL promises.

use crate::env::{RealStorage, SplitMix64, Storage};
use crate::faults::{injected_error, FaultPlan};
use attrition_util::crc::crc32;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the log inside a WAL directory.
pub const WAL_FILE: &str = "wal.log";

/// Frame header size: `len: u32` + `crc: u32`.
const HEADER: usize = 8;
/// Payload prefix: the record's sequence number.
const SEQ_BYTES: usize = 8;

/// When appended records are `fsync`ed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync; the OS flushes on its own schedule. An ack survives
    /// a process crash but not an OS/power crash.
    Never,
    /// Fsync once every `n` appends (and at every checkpoint). At most
    /// `n − 1` acked records are exposed to an OS crash.
    Interval(u64),
    /// Fsync every append before acking. An acked record survives an
    /// OS crash; slowest policy.
    Always,
}

impl SyncPolicy {
    /// Parse `never`, `always`, or `interval:N` (N ≥ 1).
    pub fn parse(text: &str) -> Result<SyncPolicy, String> {
        match text {
            "never" => Ok(SyncPolicy::Never),
            "always" => Ok(SyncPolicy::Always),
            other => match other.strip_prefix("interval:").map(str::parse) {
                Some(Ok(n)) if n >= 1 => Ok(SyncPolicy::Interval(n)),
                _ => Err(format!(
                    "bad sync policy {text:?} (expected never, always, or interval:N with N ≥ 1)"
                )),
            },
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::Never => write!(f, "never"),
            SyncPolicy::Interval(n) => write!(f, "interval:{n}"),
            SyncPolicy::Always => write!(f, "always"),
        }
    }
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Sequence number (LSN), 1-based, monotonic.
    pub seq: u64,
    /// The operation, as a protocol request line.
    pub op: String,
}

/// Encode one frame (header + payload) ready to append.
pub fn encode_record(seq: u64, op: &str) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER + SEQ_BYTES + op.len());
    encode_record_into(&mut frame, seq, op);
    frame
}

/// [`encode_record`] into a reusable buffer (cleared first) — the WAL's
/// steady-state encoder, so appending does not allocate a frame per
/// record.
pub fn encode_record_into(frame: &mut Vec<u8>, seq: u64, op: &str) {
    frame.clear();
    let payload_len = SEQ_BYTES + op.len();
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // crc patched below
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(op.as_bytes());
    let crc = crc32(&frame[HEADER..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
}

/// Everything [`read_records`] learned about a log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// The decodable record prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Bytes of valid frames (the offset a torn tail starts at).
    pub valid_len: u64,
    /// Trailing bytes that are not a valid frame (0 for a clean log).
    pub torn_bytes: u64,
}

/// Decode every valid frame from the start of `path`; a missing file
/// reads as an empty log. Stops at the first invalid frame (short
/// header, impossible length, CRC mismatch, or payload too short to
/// carry a sequence number) and reports the remainder as torn.
pub fn read_records(path: &Path) -> std::io::Result<WalScan> {
    read_records_in(RealStorage::shared().as_ref(), path)
}

/// [`read_records`] against any [`Storage`] (the simulator's entry
/// point; the real code path is identical).
pub fn read_records_in(storage: &dyn Storage, path: &Path) -> std::io::Result<WalScan> {
    let bytes = match storage.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= HEADER {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        let start = offset + HEADER;
        if len < SEQ_BYTES || bytes.len() - start < len {
            break; // impossible or incomplete payload: torn
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            break; // corrupt (bit flip or torn mid-frame)
        }
        let seq = u64::from_le_bytes(payload[..SEQ_BYTES].try_into().unwrap());
        let op = match std::str::from_utf8(&payload[SEQ_BYTES..]) {
            Ok(op) => op.to_owned(),
            Err(_) => break, // CRC-valid but not UTF-8: treat as torn
        };
        records.push(WalRecord { seq, op });
        offset = start + len;
    }
    Ok(WalScan {
        records,
        valid_len: offset as u64,
        torn_bytes: (bytes.len() - offset) as u64,
    })
}

/// Truncate `path` to its valid prefix, discarding a torn tail.
pub fn truncate_to_valid(path: &Path, valid_len: u64) -> std::io::Result<()> {
    truncate_to_valid_in(RealStorage::shared().as_ref(), path, valid_len)
}

/// [`truncate_to_valid`] against any [`Storage`].
pub fn truncate_to_valid_in(
    storage: &dyn Storage,
    path: &Path,
    valid_len: u64,
) -> std::io::Result<()> {
    storage.set_len(path, valid_len)?;
    storage.sync(path)
}

/// The append handle the server writes through.
pub struct Wal {
    storage: Arc<dyn Storage>,
    path: PathBuf,
    policy: SyncPolicy,
    next_seq: u64,
    /// Mirror of the file length, so a torn append can roll back.
    len: u64,
    appends: u64,
    fsyncs: u64,
    unsynced: u64,
    attempts: u64,
    faults: FaultPlan,
    fault_rng: SplitMix64,
    crashed: bool,
    /// Reusable frame encode buffer (see [`encode_record_into`]).
    frame: Vec<u8>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("next_seq", &self.next_seq)
            .field("len", &self.len)
            .field("crashed", &self.crashed)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Open (creating if missing) the log at `path` for appending.
    /// `next_seq` is the LSN the next record gets — after recovery,
    /// one past the highest sequence number seen.
    pub fn open(path: &Path, policy: SyncPolicy, next_seq: u64) -> std::io::Result<Wal> {
        Wal::open_with_faults(path, policy, next_seq, FaultPlan::none())
    }

    /// [`open`](Wal::open) with a fault-injection schedule (tests).
    pub fn open_with_faults(
        path: &Path,
        policy: SyncPolicy,
        next_seq: u64,
        faults: FaultPlan,
    ) -> std::io::Result<Wal> {
        Wal::open_in(RealStorage::shared(), path, policy, next_seq, faults)
    }

    /// [`open_with_faults`](Wal::open_with_faults) against any
    /// [`Storage`] — the constructor the simulator uses.
    pub fn open_in(
        storage: Arc<dyn Storage>,
        path: &Path,
        policy: SyncPolicy,
        next_seq: u64,
        faults: FaultPlan,
    ) -> std::io::Result<Wal> {
        assert!(next_seq >= 1, "sequence numbers are 1-based");
        // Touch the file so an empty log exists on disk from the start
        // (recovery treats a missing file and an empty file the same,
        // but a visible empty log is easier to operate on).
        storage.append(path, b"")?;
        let len = storage.len(path)?;
        // Decorrelate the stochastic fault stream per incarnation so a
        // restarted WAL does not replay its predecessor's faults.
        let fault_rng = SplitMix64::new(faults.seed ^ next_seq.wrapping_mul(0x9E37_79B9));
        Ok(Wal {
            storage,
            path: path.to_owned(),
            policy,
            next_seq,
            len,
            appends: 0,
            fsyncs: 0,
            unsynced: 0,
            attempts: 0,
            faults,
            fault_rng,
            crashed: false,
            frame: Vec::new(),
        })
    }

    /// Append one operation; returns its sequence number. The record is
    /// on disk (per the sync policy) when this returns — the caller may
    /// ack. An error means nothing was acked and nothing must be applied:
    /// a partially-written frame (torn write) is rolled back by
    /// truncating to the pre-append length, and a log that cannot even
    /// roll back poisons itself rather than appending unreachable
    /// records after garbage.
    pub fn append(&mut self, op: &str) -> std::io::Result<u64> {
        let seq = self.append_raw(op)?;
        match self.policy {
            SyncPolicy::Never => {}
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::Interval(n) => {
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
        }
        if self.faults.crash_after_appends == Some(self.appends) {
            self.crash();
        }
        Ok(seq)
    }

    /// [`append`](Wal::append) without the per-record policy sync — one
    /// member of a group commit. The record is in the file (or the call
    /// errored and nothing is), but it is **not** durable until the
    /// group's [`commit`](Wal::commit) returns `Ok`; the caller must not
    /// ack before then. Deterministic crash-after-N faults still fire,
    /// at the append boundary, same as the plain path.
    pub fn append_deferred(&mut self, op: &str) -> std::io::Result<u64> {
        let seq = self.append_raw(op)?;
        if self.faults.crash_after_appends == Some(self.appends) {
            self.crash();
        }
        Ok(seq)
    }

    /// Append one frame with fault injection and rollback, no syncing.
    fn append_raw(&mut self, op: &str) -> std::io::Result<u64> {
        if self.crashed {
            return Err(injected_error("wal crashed"));
        }
        self.attempts += 1;
        if self.faults.fail_append == Some(self.attempts) {
            return Err(injected_error("scheduled append failure"));
        }
        let seq = self.next_seq;
        encode_record_into(&mut self.frame, seq, op);
        // One append call per frame: a crash tears at most this frame.
        let outcome = if self.faults.torn_append(&mut self.fault_rng) {
            // Injected torn write: a prefix of the frame reaches the
            // file, then the write "fails" — what a full disk or a
            // yanked cable leaves behind.
            let cut = 1 + self.fault_rng.below(self.frame.len() as u64 - 1) as usize;
            let _ = self.storage.append(&self.path, &self.frame[..cut]);
            Err(injected_error("torn append"))
        } else if self.faults.failed_append(&mut self.fault_rng) {
            Err(injected_error("scheduled append failure"))
        } else {
            self.storage.append(&self.path, &self.frame)
        };
        if let Err(e) = outcome {
            // Roll back whatever prefix may have landed. If even that
            // fails the tail is garbage and every later append would be
            // unreachable at recovery — poison the log instead.
            if self.storage.set_len(&self.path, self.len).is_err() {
                self.crashed = true;
            }
            return Err(e);
        }
        self.len += self.frame.len() as u64;
        self.next_seq += 1;
        self.appends += 1;
        self.unsynced += 1;
        attrition_obs::counter("serve.wal.appends").inc();
        Ok(seq)
    }

    /// Finish a group of [`append_deferred`](Wal::append_deferred)s:
    /// apply the sync policy **once** across the whole group. Under
    /// `always` this is the single group-commit fsync a batch pays
    /// instead of one per record; under `interval:n` it syncs only when
    /// `n` or more records are pending, so the at-most-`n−1`-unsynced
    /// ack contract holds at every batch boundary (no acks are written
    /// mid-group); under `never` it is a no-op. An error means none of
    /// the group's records may be acked — they stay in the file and
    /// recovery will replay them, but the clients must see `ERR`.
    pub fn commit(&mut self) -> std::io::Result<()> {
        if self.crashed {
            return Err(injected_error("wal crashed"));
        }
        if self.unsynced > 0 && self.faults.crash_mid_commit(&mut self.fault_rng) {
            // Process death between the group's appends and its fsync —
            // exactly the window where acked-nothing but appended-all.
            self.crash();
            return Err(injected_error("crash mid-commit"));
        }
        let due = match self.policy {
            SyncPolicy::Never => false,
            SyncPolicy::Always => self.unsynced > 0,
            SyncPolicy::Interval(n) => self.unsynced >= n,
        };
        if due {
            self.sync()?;
            attrition_obs::counter("serve.wal.group_commits").inc();
        }
        Ok(())
    }

    /// Fsync the log (no-op when nothing is pending).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.crashed {
            return Err(injected_error("wal crashed"));
        }
        if self.unsynced == 0 {
            return Ok(());
        }
        self.storage.sync(&self.path)?;
        self.unsynced = 0;
        self.fsyncs += 1;
        attrition_obs::counter("serve.wal.fsyncs").inc();
        Ok(())
    }

    /// Drop every record (after a checkpoint made them redundant). The
    /// sequence counter keeps running — LSNs never restart.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        if self.crashed {
            return Err(injected_error("wal crashed"));
        }
        self.storage.set_len(&self.path, 0)?;
        self.storage.sync(&self.path)?;
        self.len = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// The last sequence number appended (0 before the first append).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// The highest sequence number known durable: every record at or
    /// below it is either fsynced in the file or folded into a
    /// checkpoint (truncation implies a prior sync). Records above it
    /// are exposed to an OS crash — exactly the window the
    /// [`SyncPolicy`] contract permits. The simulator asserts recovery
    /// never lands below this floor.
    pub fn synced_seq(&self) -> u64 {
        self.next_seq - 1 - self.unsynced
    }

    /// Successful appends through this handle.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsyncs issued by this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Whether a scheduled crash fault has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Simulate process death: optionally tear the tail, then refuse
    /// every further operation. Fault-injection only.
    fn crash(&mut self) {
        if self.faults.torn_tail_bytes > 0 {
            if let Ok(len) = self.storage.len(&self.path) {
                let keep = len.saturating_sub(self.faults.torn_tail_bytes);
                let _ = self.storage.set_len(&self.path, keep);
            }
        }
        self.crashed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_util::check::forall;
    use attrition_util::Rng;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("attrition_wal_{tag}_{}", std::process::id()))
    }

    fn random_op(rng: &mut Rng) -> String {
        let customer = rng.u64_below(1000);
        let day = 1 + rng.u64_below(28);
        let n_items = rng.u64_below(6);
        let mut op = format!("INGEST {customer} 2012-05-{day:02}");
        for _ in 0..n_items {
            op.push_str(&format!(" {}", rng.u64_below(500)));
        }
        op
    }

    #[test]
    fn sync_policy_parses_and_displays() {
        assert_eq!(SyncPolicy::parse("never").unwrap(), SyncPolicy::Never);
        assert_eq!(SyncPolicy::parse("always").unwrap(), SyncPolicy::Always);
        assert_eq!(
            SyncPolicy::parse("interval:16").unwrap(),
            SyncPolicy::Interval(16)
        );
        for bad in ["", "sometimes", "interval:0", "interval:x", "interval:"] {
            assert!(SyncPolicy::parse(bad).is_err(), "accepted {bad:?}");
        }
        for policy in [
            SyncPolicy::Never,
            SyncPolicy::Always,
            SyncPolicy::Interval(7),
        ] {
            assert_eq!(SyncPolicy::parse(&policy.to_string()).unwrap(), policy);
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let ops = [
            "INGEST 1 2012-05-02 1 2 3",
            "FLUSH 2012-06-01",
            "INGEST 2 2012-05-03",
        ];
        let mut wal = Wal::open(&path, SyncPolicy::Always, 1).unwrap();
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(wal.append(op).unwrap(), i as u64 + 1);
        }
        assert_eq!(wal.last_seq(), 3);
        assert_eq!(wal.fsyncs(), 3);
        drop(wal);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        let got: Vec<(u64, &str)> = scan
            .records
            .iter()
            .map(|r| (r.seq, r.op.as_str()))
            .collect();
        assert_eq!(got, vec![(1, ops[0]), (2, ops[1]), (3, ops[2])]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reads_as_empty_log() {
        let scan = read_records(Path::new("/nonexistent/attrition/wal.log")).unwrap();
        assert_eq!(
            scan,
            WalScan {
                records: vec![],
                valid_len: 0,
                torn_bytes: 0
            }
        );
    }

    #[test]
    fn interval_policy_batches_fsyncs() {
        let path = temp_path("interval");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, SyncPolicy::Interval(4), 1).unwrap();
        for i in 0..10 {
            wal.append(&format!("INGEST {i} 2012-05-02")).unwrap();
        }
        assert_eq!(wal.fsyncs(), 2, "10 appends at interval:4 → 2 fsyncs");
        wal.sync().unwrap();
        assert_eq!(wal.fsyncs(), 3);
        wal.sync().unwrap();
        assert_eq!(wal.fsyncs(), 3, "nothing pending: sync is a no-op");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_syncs_once_under_always() {
        let path = temp_path("group_always");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, SyncPolicy::Always, 1).unwrap();
        for i in 0..8 {
            wal.append_deferred(&format!("INGEST {i} 2012-05-02"))
                .unwrap();
        }
        assert_eq!(wal.fsyncs(), 0, "deferred appends never sync");
        assert_eq!(wal.synced_seq(), 0);
        wal.commit().unwrap();
        assert_eq!(wal.fsyncs(), 1, "one fsync for the whole group");
        assert_eq!(wal.synced_seq(), 8);
        wal.commit().unwrap();
        assert_eq!(wal.fsyncs(), 1, "an empty commit is a no-op");
        drop(wal);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_preserves_interval_contract() {
        // interval:4 with groups of 3: a commit syncs only when ≥ 4
        // records are pending, and since no acks happen mid-group, at
        // most n−1 = 3 acked records are ever exposed.
        let path = temp_path("group_interval");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, SyncPolicy::Interval(4), 1).unwrap();
        let group = |wal: &mut Wal| {
            for _ in 0..3 {
                wal.append_deferred("INGEST 1 2012-05-02").unwrap();
            }
            wal.commit().unwrap();
        };
        group(&mut wal);
        assert_eq!(wal.fsyncs(), 0, "3 pending < interval 4: no sync yet");
        group(&mut wal);
        assert_eq!(wal.fsyncs(), 1, "6 pending ≥ 4: the commit synced");
        assert_eq!(wal.synced_seq(), 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_mid_commit_freezes_before_the_sync() {
        // A certain mid-commit crash: the group's records are appended
        // (in the file) but the commit errors and the floor stays put.
        let plan = FaultPlan {
            crash_commit_per_mille: 1000,
            ..FaultPlan::default()
        };
        let path = temp_path("crash_commit");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open_with_faults(&path, SyncPolicy::Always, 1, plan).unwrap();
        for i in 0..4 {
            wal.append_deferred(&format!("INGEST {i} 2012-05-02"))
                .unwrap();
        }
        let err = wal.commit().unwrap_err();
        assert!(err.to_string().contains("mid-commit"), "{err}");
        assert!(wal.crashed());
        assert_eq!(wal.synced_seq(), 0, "nothing became durable");
        assert_eq!(wal.fsyncs(), 0);
        assert!(wal.append("INGEST 9 2012-05-02").is_err());
        drop(wal);
        // The records are still physically in the file (an OS crash may
        // or may not keep them — that part is the simulator's job).
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_keeps_sequence_monotonic() {
        let path = temp_path("truncate");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, SyncPolicy::Never, 1).unwrap();
        wal.append("INGEST 1 2012-05-02").unwrap();
        wal.append("INGEST 2 2012-05-02").unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.append("INGEST 3 2012-05-02").unwrap(), 3);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scheduled_append_failure_fires_once() {
        let path = temp_path("failnth");
        let _ = std::fs::remove_file(&path);
        let mut wal =
            Wal::open_with_faults(&path, SyncPolicy::Never, 1, FaultPlan::fail_append(2)).unwrap();
        assert_eq!(wal.append("INGEST 1 2012-05-02").unwrap(), 1);
        let err = wal.append("INGEST 2 2012-05-02").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The failed attempt consumed no sequence number and wrote nothing.
        assert_eq!(wal.append("INGEST 3 2012-05-02").unwrap(), 2);
        drop(wal);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_fault_freezes_the_log_and_tears_the_tail() {
        let path = temp_path("crash");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open_with_faults(
            &path,
            SyncPolicy::Never,
            1,
            FaultPlan::crash_after_torn(3, 5),
        )
        .unwrap();
        for i in 1..=3u64 {
            wal.append(&format!("INGEST {i} 2012-05-02")).unwrap();
        }
        assert!(wal.crashed());
        assert!(wal.append("INGEST 9 2012-05-02").is_err());
        assert!(wal.sync().is_err());
        assert!(wal.truncate().is_err());
        drop(wal);
        // Record 3 lost its last 5 bytes: recovery sees 2 records + torn tail.
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.torn_bytes > 0);
        truncate_to_valid(&path, scan.valid_len).unwrap();
        let clean = read_records(&path).unwrap();
        assert_eq!(clean.records.len(), 2);
        assert_eq!(clean.torn_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prop_encode_decode_roundtrips() {
        forall(
            128,
            |rng| {
                let n = 1 + rng.u64_below(8);
                (0..n)
                    .map(|i| (i + 1 + rng.u64_below(100), random_op(rng)))
                    .collect::<Vec<(u64, String)>>()
            },
            |records| {
                let mut bytes = Vec::new();
                for (seq, op) in records {
                    bytes.extend_from_slice(&encode_record(*seq, op));
                }
                let path = temp_path(&format!("prop_rt_{:x}", crc32(&bytes)));
                std::fs::write(&path, &bytes).unwrap();
                let scan = read_records(&path).unwrap();
                let _ = std::fs::remove_file(&path);
                assert_eq!(scan.torn_bytes, 0);
                let got: Vec<(u64, String)> =
                    scan.records.into_iter().map(|r| (r.seq, r.op)).collect();
                assert_eq!(&got, records);
            },
        );
    }

    #[test]
    fn prop_any_single_byte_corruption_or_truncation_is_detected() {
        forall(
            48,
            |rng| {
                let n = 1 + rng.u64_below(4);
                let ops: Vec<String> = (0..n).map(|_| random_op(rng)).collect();
                let mut bytes = Vec::new();
                for (i, op) in ops.iter().enumerate() {
                    bytes.extend_from_slice(&encode_record(i as u64 + 1, op));
                }
                let pos = rng.u64_below(bytes.len() as u64) as usize;
                let flip = 1u8 << rng.u64_below(8);
                let cut = rng.u64_below(bytes.len() as u64) as usize;
                (bytes, ops.len(), pos, flip, cut)
            },
            |(bytes, n_records, pos, flip, cut)| {
                let tag = format!("prop_corrupt_{:x}_{pos}_{flip}", crc32(bytes));
                let path = temp_path(&tag);

                // Single-byte corruption: fewer records decode, and the
                // record containing the flipped byte never decodes wrong
                // — it disappears along with everything after it.
                let mut corrupted = bytes.clone();
                corrupted[*pos] ^= flip;
                std::fs::write(&path, &corrupted).unwrap();
                let scan = read_records(&path).unwrap();
                assert!(
                    scan.records.len() < *n_records,
                    "corruption at byte {pos} went undetected"
                );
                assert!(scan.torn_bytes > 0);
                // Every record that did decode is bit-identical to an
                // original (the flip cannot invent a passing frame).
                let clean = {
                    std::fs::write(&path, bytes).unwrap();
                    read_records(&path).unwrap().records
                };
                assert_eq!(scan.records.as_slice(), &clean[..scan.records.len()]);

                // Truncation at any byte: a clean prefix decodes, the
                // remainder is reported torn, never misread.
                std::fs::write(&path, &bytes[..*cut]).unwrap();
                let truncated = read_records(&path).unwrap();
                assert_eq!(
                    truncated.records.as_slice(),
                    &clean[..truncated.records.len()]
                );
                assert_eq!(truncated.valid_len + truncated.torn_bytes, *cut as u64);
                let _ = std::fs::remove_file(&path);
            },
        );
    }
}
