//! Proves the batched INGEST hot path is allocation-free at steady
//! state: after warmup (scratch buffers at capacity, customers and
//! items known, WAL appender open), `Engine::respond_batch` executes a
//! durable, fsynced batch without touching the heap.
//!
//! The proof is a counting `#[global_allocator]`: allocations are
//! counted only while the measured window is open, so test-harness and
//! setup allocations don't pollute the count. This file holds exactly
//! one test — a second test thread would race the counter.

use attrition_core::StabilityParams;
use attrition_serve::engine::{BatchScratch, DurabilityConfig, Engine};
use attrition_serve::shard::ShardedMonitor;
use attrition_serve::{PackedLines, SyncPolicy};
use attrition_store::WindowSpec;
use attrition_types::Date;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Pre-rendered `BATCH` frame bodies: 8 INGEST members over two fixed
/// customers and a fixed item set, all inside one window so nothing
/// ever closes mid-measurement.
fn frames(n: usize, salt: u64) -> Vec<(String, Vec<(usize, usize)>)> {
    (0..n)
        .map(|f| {
            let mut buf = String::new();
            let mut bounds = Vec::new();
            for m in 0..8u64 {
                let customer = 1 + m % 2;
                let day = 1 + (salt + m) % 28;
                let a = 1 + m % 4;
                let b = 5 + (m + f as u64) % 4;
                let start = buf.len();
                use std::fmt::Write as _;
                let _ = write!(buf, "INGEST {customer} 2012-05-{day:02} {a} {b}");
                bounds.push((start, buf.len()));
            }
            (buf, bounds)
        })
        .collect()
}

#[test]
fn steady_state_batched_ingest_does_not_allocate() {
    let dir = std::env::temp_dir().join(format!("attrition_alloc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let monitor = ShardedMonitor::new(2, spec, StabilityParams::PAPER, 5);
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.sync_policy = SyncPolicy::Always;
    // Checkpoints allocate by design; disable both triggers so the
    // measured window exercises only append + group commit + apply.
    dcfg.checkpoint_every_requests = 0;
    dcfg.checkpoint_every = None;
    let engine = Engine::open(monitor, None, Some(&dcfg), 1).expect("engine opens");

    let mut scratch = BatchScratch::new();
    let mut out = String::new();

    // Warmup: grow every reusable buffer past its steady-state size.
    // Pending-item vectors grow by doubling, so pushing ~4.8k items per
    // customer leaves headroom far beyond what the measured batches add.
    for (buf, bounds) in &frames(600, 0) {
        out.clear();
        engine.respond_batch(&PackedLines::new(buf, bounds), &mut scratch, &mut out);
        assert!(out.starts_with("OKBATCH 8"), "warmup batch acked: {out}");
    }

    // Pre-render the measured frames before the window opens.
    let measured = frames(8, 3);

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for (buf, bounds) in &measured {
        out.clear();
        engine.respond_batch(&PackedLines::new(buf, bounds), &mut scratch, &mut out);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert!(out.starts_with("OKBATCH 8"), "measured batch acked: {out}");
    assert_eq!(
        allocs, 0,
        "steady-state batched INGEST allocated {allocs} time(s); the zero-alloc hot path regressed"
    );

    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}
