//! End-to-end batched-protocol tests: bit-identity against unbatched
//! runs, group-commit fsync amortization, pipelined clients, and
//! recovery after a truncated batch frame.
//!
//! The load-bearing property is **bit-identity**: a workload sent as
//! `BATCH` frames must produce byte-equal member responses, byte-equal
//! `SCORE` output, and a byte-equal recovered snapshot compared to the
//! same workload sent one line at a time — at any shard count. Snapshot
//! text compares floats in shortest-roundtrip form, so string equality
//! is `to_bits` equality on every score.

use attrition_core::StabilityParams;
use attrition_serve::client::{Client, Pipeline, Reply};
use attrition_serve::server::{self, DurabilityConfig, ServerConfig, ServerSummary};
use attrition_serve::{recover, Fallback, SyncPolicy};
use attrition_store::WindowSpec;
use attrition_types::Date;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("attrition_batch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> WindowSpec {
    WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1)
}

fn durable_config(dir: &Path, n_shards: usize) -> ServerConfig {
    let mut config = ServerConfig::new("127.0.0.1:0", spec(), StabilityParams::PAPER);
    config.read_timeout = Duration::from_secs(2);
    config.n_shards = n_shards;
    let mut dcfg = DurabilityConfig::new(dir.to_path_buf());
    dcfg.sync_policy = SyncPolicy::Always;
    config.durability = Some(dcfg);
    config
}

fn fallback() -> Fallback {
    Fallback {
        spec: spec(),
        params: StabilityParams::PAPER,
        max_explanations: 5,
    }
}

/// A deterministic mixed workload: interleaved in-order and backdated
/// ingests across `n_customers`, periodic flushes and scores — every
/// response class (multi-line `OK`, `SCORE`, out-of-order `ERR`).
fn workload(n_customers: u64, n_ops: u64) -> Vec<String> {
    let mut lines = Vec::with_capacity(n_ops as usize);
    for i in 0..n_ops {
        let customer = 1 + i % n_customers;
        match i % 11 {
            10 => lines.push(format!("SCORE {}", 1 + i % (n_customers + 2))),
            7 => {
                let (y, m, _) = Date::from_ymd(2012, 5, 1)
                    .unwrap()
                    .add_months((i / 40) as i32)
                    .ymd();
                lines.push(format!("FLUSH {}", Date::from_ymd(y, m, 1).unwrap()));
            }
            _ => {
                // Mostly advancing dates with an occasional backdated
                // receipt that the monitor answers `ERR out of order`.
                let month = if i % 13 == 5 { 0 } else { (i / 25) as i32 };
                let (y, m, _) = Date::from_ymd(2012, 5, 1).unwrap().add_months(month).ymd();
                let day = 1 + (i % 28) as u32;
                let date = Date::from_ymd(y, m, day).unwrap();
                let a = 1 + (i * 7 + customer) % 50;
                let b = 1 + (i * 13 + customer) % 50;
                lines.push(format!("INGEST {customer} {date} {a} {b} {a}"));
            }
        }
    }
    lines
}

/// Read one self-describing member/request response (multi-line `OK <n>`
/// responses joined with `\n`).
fn read_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut first = String::new();
    reader.read_line(&mut first).expect("reads response");
    let mut response = first.trim_end().to_owned();
    if let Some(extra) = response
        .strip_prefix("OK ")
        .and_then(|rest| rest.trim().parse::<usize>().ok())
    {
        for _ in 0..extra {
            let mut line = String::new();
            reader.read_line(&mut line).expect("reads CLOSED line");
            response.push('\n');
            response.push_str(line.trim_end());
        }
    }
    response
}

/// Run `lines` against a fresh durable server, either one frame per
/// line or in `BATCH` frames of `batch` members, over a raw socket (so
/// the comparison is at the byte level). Returns the per-op responses,
/// the final `SCORE` lines for every customer, and the server summary.
fn run_workload(
    dir: &Path,
    n_shards: usize,
    lines: &[String],
    batch: usize,
    n_customers: u64,
) -> (Vec<String>, Vec<String>, ServerSummary) {
    let handle = server::start(durable_config(dir, n_shards)).expect("server starts");
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connects");
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("sets timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clones stream"));

    let mut responses = Vec::with_capacity(lines.len());
    if batch <= 1 {
        for line in lines {
            stream.write_all(line.as_bytes()).expect("writes line");
            stream.write_all(b"\n").expect("writes newline");
            responses.push(read_response(&mut reader));
        }
    } else {
        for chunk in lines.chunks(batch) {
            let mut frame = format!("BATCH {}\n", chunk.len());
            for line in chunk {
                frame.push_str(line);
                frame.push('\n');
            }
            stream.write_all(frame.as_bytes()).expect("writes frame");
            let mut header = String::new();
            reader.read_line(&mut header).expect("reads batch header");
            assert_eq!(header.trim_end(), format!("OKBATCH {}", chunk.len()));
            for _ in 0..chunk.len() {
                responses.push(read_response(&mut reader));
            }
        }
    }

    let mut scores = Vec::with_capacity(n_customers as usize);
    for customer in 1..=n_customers {
        let line = format!("SCORE {customer}");
        stream.write_all(line.as_bytes()).expect("writes score");
        stream.write_all(b"\n").expect("writes newline");
        scores.push(read_response(&mut reader));
    }

    handle.request_shutdown();
    drop(stream);
    let summary = handle.join();
    (responses, scores, summary)
}

#[test]
fn batched_runs_are_bit_identical_to_unbatched_at_any_shard_count() {
    let n_customers = 6;
    let lines = workload(n_customers, 220);
    let mut snapshots = Vec::new();
    for n_shards in [1usize, 4] {
        let single_dir = temp_dir(&format!("single_{n_shards}"));
        let batched_dir = temp_dir(&format!("batched_{n_shards}"));
        let (single_responses, single_scores, single_summary) =
            run_workload(&single_dir, n_shards, &lines, 1, n_customers);
        let (batched_responses, batched_scores, batched_summary) =
            run_workload(&batched_dir, n_shards, &lines, 16, n_customers);

        // Byte-equal member responses, op by op, and byte-equal SCOREs.
        assert_eq!(single_responses, batched_responses, "shards={n_shards}");
        assert_eq!(single_scores, batched_scores, "shards={n_shards}");

        // Group commit amortizes fsyncs without losing records: same
        // appends, strictly fewer fsyncs under sync=always.
        assert_eq!(single_summary.wal_appends, batched_summary.wal_appends);
        assert!(
            batched_summary.wal_fsyncs < single_summary.wal_fsyncs,
            "batched fsyncs {} must be below unbatched {} (shards={n_shards})",
            batched_summary.wal_fsyncs,
            single_summary.wal_fsyncs
        );

        // Byte-equal recovered snapshots from both WAL directories.
        let (single_rec, _) = recover(&single_dir, Some(&fallback())).expect("recovers single");
        let (batched_rec, _) = recover(&batched_dir, Some(&fallback())).expect("recovers batched");
        assert_eq!(
            single_rec.snapshot(),
            batched_rec.snapshot(),
            "recovered snapshots diverge at shards={n_shards}"
        );
        snapshots.push(single_rec.snapshot());

        let _ = std::fs::remove_dir_all(&single_dir);
        let _ = std::fs::remove_dir_all(&batched_dir);
    }
    // And the shard count itself never changes the state.
    assert_eq!(snapshots[0], snapshots[1], "shard count changed the state");
}

#[test]
fn group_commit_fsyncs_once_per_batch_of_mutations() {
    let dir = temp_dir("fsync_count");
    let handle = server::start(durable_config(&dir, 2)).expect("server starts");
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");

    // 8 batches x 16 ingests at sync=always: 16 appends but ONE fsync
    // per frame (plus the shutdown checkpoint's).
    for round in 0..8u64 {
        let members: Vec<String> = (0..16u64)
            .map(|i| {
                format!(
                    "INGEST {} 2012-05-{:02} {}",
                    1 + i % 4,
                    1 + round * 3 % 28,
                    1 + i
                )
            })
            .collect();
        let replies = client.send_batch(&members).expect("batch round-trips");
        assert_eq!(replies.len(), 16);
        assert!(
            replies.iter().all(|r| matches!(r, Reply::Closed(_))),
            "all ingests acked: {replies:?}"
        );
    }
    handle.request_shutdown();
    drop(client);
    let summary = handle.join();
    assert_eq!(summary.requests, 8 * 16);
    assert_eq!(summary.wal_appends, 8 * 16);
    assert!(
        summary.wal_fsyncs <= 8 + 1,
        "expected ~one fsync per batch (+ shutdown checkpoint), got {}",
        summary.wal_fsyncs
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_batches_overlap_and_drain_in_order() {
    let dir = temp_dir("pipeline");
    let handle = server::start(durable_config(&dir, 2)).expect("server starts");
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");

    let mut pipeline: Pipeline<'_, u64> = Pipeline::new(&mut client, 4);
    let mut completed = Vec::new();
    for round in 0..12u64 {
        let members: Vec<String> = (0..8u64)
            .map(|i| format!("INGEST {} 2012-05-02 {}", 1 + i, 1 + round))
            .collect();
        if let Some((replies, tag)) = pipeline.submit(&members, round).expect("submits") {
            assert_eq!(replies.len(), 8);
            completed.push(tag);
        }
        assert!(pipeline.in_flight() <= 4, "window must bound in-flight");
    }
    for (replies, tag) in pipeline.drain().expect("drains") {
        assert_eq!(replies.len(), 8);
        completed.push(tag);
    }
    // Every batch acked, oldest first.
    assert_eq!(completed, (0..12).collect::<Vec<u64>>());

    handle.request_shutdown();
    drop(client);
    let summary = handle.join();
    assert_eq!(summary.requests, 12 * 8);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_batch_leaves_no_partial_suffix_after_recovery() {
    let dir = temp_dir("truncated");
    let handle = server::start(durable_config(&dir, 2)).expect("server starts");

    // One complete batch, acked after its group commit.
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
    client
        .send_batch(&[
            "INGEST 1 2012-05-02 10".to_owned(),
            "INGEST 2 2012-05-03 11".to_owned(),
        ])
        .expect("complete batch acks");

    // Then a torn frame: 3 members announced, 1 delivered, connection
    // dropped. The server must execute and log NONE of it.
    {
        let mut torn = TcpStream::connect(handle.local_addr()).expect("connects");
        torn.write_all(b"BATCH 3\nINGEST 3 2012-05-04 12\n")
            .expect("writes partial frame");
    }
    // Give the worker time to observe the EOF before shutdown.
    std::thread::sleep(Duration::from_millis(100));

    handle.request_shutdown();
    drop(client);
    let summary = handle.join();
    assert_eq!(
        summary.wal_appends, 2,
        "partial batch must not reach the WAL"
    );

    let (recovered, _) = recover(&dir, Some(&fallback())).expect("recovers");
    let snapshot = recovered.snapshot();
    let has_customer = |id: &str| {
        snapshot
            .lines()
            .any(|l| l.starts_with("c,") && l[2..].starts_with(id))
    };
    assert!(has_customer("1,"), "acked member 1 survives:\n{snapshot}");
    assert!(has_customer("2,"), "acked member 2 survives:\n{snapshot}");
    assert!(
        !has_customer("3,"),
        "the truncated batch's member leaked into recovered state:\n{snapshot}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
