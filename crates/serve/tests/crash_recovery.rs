//! Fault-injected crash-recovery tests: a real durable server is
//! "killed" mid-stream by a [`FaultPlan`], then rebuilt from its WAL
//! directory — and the recovered state must be **bit-identical** to an
//! offline monitor that processed exactly the acknowledged requests.
//! Snapshot text compares floats in shortest-roundtrip form, so string
//! equality here is `to_bits` equality on every score.

use attrition_core::{StabilityMonitor, StabilityParams};
use attrition_datagen::ScenarioConfig;
use attrition_serve::client::{Client, Reply};
use attrition_serve::server::{self, DurabilityConfig, ServerConfig};
use attrition_serve::{recover, Fallback, FaultPlan, ShardedMonitor, SyncPolicy};
use attrition_store::{chronological, ReceiptStore, WindowSpec};
use attrition_types::{Basket, CustomerId, Date};
use std::path::{Path, PathBuf};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("attrition_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenario(n_loyal: usize, n_defectors: usize, n_months: u32) -> (ScenarioConfig, ReceiptStore) {
    let mut cfg = ScenarioConfig::small();
    cfg.n_loyal = n_loyal;
    cfg.n_defectors = n_defectors;
    cfg.n_months = n_months;
    cfg.onset_month = n_months / 2;
    let dataset = attrition_datagen::generate(&cfg);
    (cfg, dataset.segment_store())
}

fn durable_config(spec: WindowSpec, dir: &Path, plan: FaultPlan) -> ServerConfig {
    let mut config = ServerConfig::new("127.0.0.1:0", spec, StabilityParams::PAPER);
    config.read_timeout = Duration::from_secs(2);
    let mut dcfg = DurabilityConfig::new(dir.to_path_buf());
    // `Never` keeps the tests fast; recovery correctness is the same
    // code path for every policy (only the ack guarantee differs).
    dcfg.sync_policy = SyncPolicy::Never;
    dcfg.fault_plan = Some(plan);
    config.durability = Some(dcfg);
    config
}

fn fallback(spec: WindowSpec) -> Fallback {
    Fallback {
        spec,
        params: StabilityParams::PAPER,
        max_explanations: 5,
    }
}

/// Replay the scenario through a durable server that "dies" after
/// `crash_after` WAL appends; returns the offline reference monitor fed
/// exactly the acknowledged ingests, plus how many were acked.
fn run_until_crash(
    seg_store: &ReceiptStore,
    spec: WindowSpec,
    dir: &Path,
    plan: FaultPlan,
) -> (StabilityMonitor, u64) {
    let handle = server::start(durable_config(spec, dir, plan)).expect("server starts");
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
    let mut reference = StabilityMonitor::new(spec, StabilityParams::PAPER);
    let mut acked = 0u64;
    for receipt in chronological(seg_store) {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        match client.ingest(receipt.customer.raw(), receipt.date, &items) {
            Ok(Reply::Closed(_)) => {
                acked += 1;
                reference.ingest(
                    receipt.customer,
                    receipt.date,
                    &Basket::new(receipt.items.to_vec()),
                );
            }
            Ok(Reply::Err(message)) => {
                assert!(
                    message.contains("wal append failed"),
                    "only wal failures may reject this stream: {message}"
                );
            }
            Ok(other) => panic!("unexpected ingest reply: {other:?}"),
            // The crashed server may also drop the connection mid-reply.
            Err(_) => break,
        }
    }
    // The "process" dies: no graceful SHUTDOWN. The shutdown checkpoint
    // runs anyway when the handle drains — and must FAIL (the WAL is
    // frozen), leaving recovery to the WAL files, like a real crash.
    handle.request_shutdown();
    let summary = handle.join();
    assert!(
        summary.checkpoint_error.is_some(),
        "a crashed WAL must fail the shutdown checkpoint, not fake one"
    );
    (reference, acked)
}

#[test]
fn crash_mid_stream_recovers_bit_identical_to_acked_requests() {
    let dir = temp_dir("midstream");
    let (cfg, seg_store) = scenario(10, 10, 8);
    let spec = WindowSpec::months(cfg.start, 1);

    let (reference, acked) = run_until_crash(&seg_store, spec, &dir, FaultPlan::crash_after(120));
    assert_eq!(acked, 120, "exactly the appended records were acked");

    let (recovered, stats) = recover(&dir, Some(&fallback(spec))).expect("recovery succeeds");
    assert_eq!(stats.replayed, 120);
    assert_eq!(stats.next_seq, 121);
    assert_eq!(
        recovered.snapshot(),
        reference.snapshot(),
        "recovered state diverged from the acknowledged requests"
    );

    // The recovered monitor scores the future identically too.
    let mut recovered = recovered;
    let mut reference = reference;
    let end = cfg.start.add_months(cfg.n_months as i32 + 1);
    let (a, b) = (recovered.flush_until(end), reference.flush_until(end));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.customer, y.customer);
        assert_eq!(x.point.value.to_bits(), y.point.value.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_loses_only_the_torn_record() {
    let dir = temp_dir("torn");
    let (cfg, seg_store) = scenario(8, 8, 6);
    let spec = WindowSpec::months(cfg.start, 1);

    // Tear 1 byte off the file at the crash: the final record's frame
    // fails its CRC, so exactly that record is lost — the contract of
    // `SyncPolicy::Never`, where an ack only survives a *process* crash
    // once the OS has the bytes, not a torn write.
    let (reference, acked) =
        run_until_crash(&seg_store, spec, &dir, FaultPlan::crash_after_torn(80, 1));
    assert_eq!(acked, 80);

    let (recovered, stats) = recover(&dir, Some(&fallback(spec))).expect("recovery succeeds");
    assert_eq!(stats.torn_bytes, 8 + 8 + stats_last_op_len(&seg_store, 80));
    assert_eq!(
        stats.replayed, 79,
        "all but the torn record replay: {stats:?}"
    );

    // Bit-identity with the acked stream *minus* the torn record.
    let mut expected = StabilityMonitor::new(spec, StabilityParams::PAPER);
    for receipt in chronological(&seg_store).take(79) {
        expected.ingest(
            receipt.customer,
            receipt.date,
            &Basket::new(receipt.items.to_vec()),
        );
    }
    assert_eq!(recovered.snapshot(), expected.snapshot());
    assert_ne!(
        recovered.snapshot(),
        reference.snapshot(),
        "the torn record must actually be missing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Length of the op line of the `n`th (1-based) chronological ingest —
/// the tear removes 1 byte, so the whole final frame (8-byte header +
/// 8-byte seq + op) is dropped by the CRC check.
fn stats_last_op_len(seg_store: &ReceiptStore, n: usize) -> u64 {
    let receipt = chronological(seg_store).nth(n - 1).expect("record exists");
    let mut op = format!("INGEST {} {}", receipt.customer.raw(), receipt.date);
    for item in receipt.items.iter() {
        op.push(' ');
        op.push_str(&item.raw().to_string());
    }
    op.len() as u64 - 1 // the torn byte itself is already off the file
}

#[test]
fn failed_append_rejects_the_request_without_applying_it() {
    let dir = temp_dir("failedappend");
    let (cfg, seg_store) = scenario(5, 5, 6);
    let spec = WindowSpec::months(cfg.start, 1);

    let handle = server::start(durable_config(spec, &dir, FaultPlan::fail_append(10)))
        .expect("server starts");
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
    let mut reference = StabilityMonitor::new(spec, StabilityParams::PAPER);
    let mut rejected = 0u64;
    for receipt in chronological(&seg_store) {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        match client
            .ingest(receipt.customer.raw(), receipt.date, &items)
            .expect("connection stays up — only the one append fails")
        {
            Reply::Closed(_) => {
                reference.ingest(
                    receipt.customer,
                    receipt.date,
                    &Basket::new(receipt.items.to_vec()),
                );
            }
            Reply::Err(message) => {
                assert!(message.contains("wal append failed"), "{message}");
                assert!(message.contains("injected fault"), "{message}");
                rejected += 1;
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert_eq!(rejected, 1, "exactly the 10th append fails");

    // The live server already excludes the rejected request…
    let probe: Vec<CustomerId> = reference.customer_ids();
    for customer in probe.iter().take(3) {
        let expected = reference.preview(*customer).expect("tracked");
        match client.score(customer.raw()).expect("score rpc") {
            Reply::Score(s) => assert_eq!(s.value.to_bits(), expected.value.to_bits()),
            other => panic!("unexpected score reply: {other:?}"),
        }
    }
    client.send("SHUTDOWN").expect("shutdown rpc");
    let summary = handle.join();
    assert!(summary.checkpoint_error.is_none(), "clean shutdown");
    assert!(summary.checkpoints >= 1);

    // …and so does recovery (from the shutdown checkpoint).
    let (recovered, _) = recover(&dir, None).expect("recovery succeeds");
    assert_eq!(recovered.snapshot(), reference.snapshot());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_continues_the_log_and_periodic_checkpoints_cut_exactly() {
    let dir = temp_dir("restart");
    let (cfg, seg_store) = scenario(6, 6, 8);
    let spec = WindowSpec::months(cfg.start, 1);
    let receipts: Vec<_> = chronological(&seg_store).collect();
    let half = receipts.len() / 2;

    let mut reference = StabilityMonitor::new(spec, StabilityParams::PAPER);
    let serve_slice = |slice: &[attrition_store::ReceiptRef<'_>],
                       monitor: ShardedMonitor,
                       next_seq: u64,
                       reference: &mut StabilityMonitor| {
        let mut config = durable_config(spec, &dir, FaultPlan::none());
        // Aggressive periodic checkpointing: every 16 requests, so the
        // run exercises write→prune→truncate many times mid-stream.
        config
            .durability
            .as_mut()
            .unwrap()
            .checkpoint_every_requests = 16;
        let handle = server::start_resumed(config, monitor, next_seq).expect("server starts");
        let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
        for receipt in slice {
            let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
            match client
                .ingest(receipt.customer.raw(), receipt.date, &items)
                .expect("ingest rpc")
            {
                Reply::Closed(_) => {
                    reference.ingest(
                        receipt.customer,
                        receipt.date,
                        &Basket::new(receipt.items.to_vec()),
                    );
                }
                other => panic!("unexpected ingest reply: {other:?}"),
            }
        }
        client.send("SHUTDOWN").expect("shutdown rpc");
        let summary = handle.join();
        assert!(summary.checkpoint_error.is_none());
        assert!(summary.checkpoints >= 1);
        summary
    };

    // First run: fresh directory.
    let monitor = ShardedMonitor::new(4, spec, StabilityParams::PAPER, 5);
    serve_slice(&receipts[..half], monitor, 1, &mut reference);

    // Restart: recover, serve the rest, recover again.
    let (recovered, stats) = recover(&dir, None).expect("recovery after first run");
    assert_eq!(recovered.snapshot(), reference.snapshot(), "first half");
    let monitor = ShardedMonitor::from_monitor(recovered, 4);
    serve_slice(&receipts[half..], monitor, stats.next_seq, &mut reference);

    let (final_state, final_stats) = recover(&dir, None).expect("recovery after second run");
    assert_eq!(
        final_state.snapshot(),
        reference.snapshot(),
        "full stream after a restart"
    );
    // Clean shutdowns truncate the WAL: nothing to replay.
    assert_eq!(final_stats.replayed, 0);
    assert!(final_stats.checkpoint_lsn.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flush_is_logged_and_replayed() {
    let dir = temp_dir("flush");
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let handle = server::start(durable_config(spec, &dir, FaultPlan::crash_after(3)))
        .expect("server starts");
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
    client
        .ingest(1, Date::from_ymd(2012, 5, 2).unwrap(), &[1, 2])
        .expect("ingest rpc");
    client
        .ingest(2, Date::from_ymd(2012, 5, 3).unwrap(), &[3])
        .expect("ingest rpc");
    // The flush closes 3 monthly windows (May–July) for each of the two
    // customers — and is the 3rd logged record, after which the WAL
    // freezes.
    match client
        .flush(Date::from_ymd(2012, 8, 1).unwrap())
        .expect("flush rpc")
    {
        Reply::Closed(closed) => assert_eq!(closed.len(), 6),
        other => panic!("unexpected flush reply: {other:?}"),
    }
    handle.request_shutdown();
    let summary = handle.join();
    assert!(summary.checkpoint_error.is_some(), "wal is frozen");

    let (recovered, stats) = recover(&dir, Some(&fallback(spec))).expect("recovery succeeds");
    assert_eq!(stats.replayed, 3);
    let mut reference = StabilityMonitor::new(spec, StabilityParams::PAPER);
    reference.ingest(
        CustomerId::new(1),
        Date::from_ymd(2012, 5, 2).unwrap(),
        &Basket::from_raw(&[1, 2]),
    );
    reference.ingest(
        CustomerId::new(2),
        Date::from_ymd(2012, 5, 3).unwrap(),
        &Basket::from_raw(&[3]),
    );
    reference.flush_until(Date::from_ymd(2012, 8, 1).unwrap());
    assert_eq!(recovered.snapshot(), reference.snapshot());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a durability directory holding only a stranded
/// `checkpoint-*.ckpt.tmp` (the crash hit between the staging write and
/// a durable rename) plus an empty (0-byte) WAL used to fail recovery
/// with `NoGrid` even though a fully verified checkpoint was sitting
/// right there under the staging name. Recovery must salvage it — here
/// the checkpoint of an *empty* server, so the recovered state is the
/// empty state.
#[test]
fn stranded_tmp_checkpoint_with_empty_wal_recovers() {
    use attrition_serve::checkpoint;

    let dir = temp_dir("tmponly");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let empty = StabilityMonitor::new(spec, StabilityParams::PAPER).with_max_explanations(5);

    // A first-boot shutdown checkpoint of an empty server, stranded
    // under its staging name, next to a 0-byte log.
    let final_path = checkpoint::write(&dir, 0, &empty.snapshot()).expect("checkpoint written");
    let tmp_path = checkpoint::tmp_path(&final_path);
    std::fs::rename(&final_path, &tmp_path).unwrap();
    std::fs::write(dir.join("wal.log"), b"").unwrap();

    // No fallback grid: before the fix this was RecoveryError::NoGrid.
    let (recovered, stats) = recover(&dir, None).expect("tmp checkpoint must be salvaged");
    assert!(stats.salvaged_tmp, "{stats:?}");
    assert_eq!(stats.checkpoint_lsn, Some(0));
    assert_eq!(stats.next_seq, 1);
    assert_eq!(recovered.num_customers(), 0, "empty state, not an error");
    assert_eq!(recovered.snapshot(), empty.snapshot());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The salvage is a last resort: with any valid *final* checkpoint
/// present, a stranded tmp — even one with a higher LSN — must be
/// ignored, because the WAL can only have been truncated against a
/// durably renamed checkpoint (final + replay reaches at least the
/// tmp's state).
#[test]
fn stranded_tmp_is_ignored_when_a_final_checkpoint_exists() {
    use attrition_serve::checkpoint;

    let dir = temp_dir("tmpvsfinal");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let mut monitor = StabilityMonitor::new(spec, StabilityParams::PAPER).with_max_explanations(5);
    monitor.ingest(
        CustomerId::new(1),
        Date::from_ymd(2012, 5, 2).unwrap(),
        &Basket::from_raw(&[1]),
    );
    checkpoint::write(&dir, 1, &monitor.snapshot()).expect("final checkpoint");
    let final_snapshot = monitor.snapshot();

    // A newer, *different* state stranded under a staging name.
    monitor.ingest(
        CustomerId::new(2),
        Date::from_ymd(2012, 5, 3).unwrap(),
        &Basket::from_raw(&[2]),
    );
    let newer = checkpoint::write(&dir, 2, &monitor.snapshot()).expect("newer checkpoint");
    std::fs::rename(&newer, checkpoint::tmp_path(&newer)).unwrap();
    std::fs::write(dir.join("wal.log"), b"").unwrap();

    let (recovered, stats) = recover(&dir, None).expect("recovery succeeds");
    assert!(!stats.salvaged_tmp, "finals are preferred: {stats:?}");
    assert_eq!(stats.checkpoint_lsn, Some(1));
    assert_eq!(recovered.snapshot(), final_snapshot);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same edge case end to end: a server resumed from a tmp-only
/// directory starts serving the salvaged state instead of dying.
#[test]
fn server_resumes_from_a_tmp_only_directory() {
    use attrition_serve::checkpoint;

    let dir = temp_dir("tmpresume");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let mut monitor = StabilityMonitor::new(spec, StabilityParams::PAPER).with_max_explanations(5);
    monitor.ingest(
        CustomerId::new(7),
        Date::from_ymd(2012, 5, 2).unwrap(),
        &Basket::from_raw(&[1, 2]),
    );
    let path = checkpoint::write(&dir, 3, &monitor.snapshot()).expect("checkpoint");
    std::fs::rename(&path, checkpoint::tmp_path(&path)).unwrap();
    std::fs::write(dir.join("wal.log"), b"").unwrap();

    let (recovered, stats) = recover(&dir, None).expect("salvage");
    assert!(stats.salvaged_tmp);
    let config = durable_config(spec, &dir, FaultPlan::none());
    let handle = server::start_resumed(
        config,
        ShardedMonitor::from_monitor(recovered, 4),
        stats.next_seq,
    )
    .expect("server resumes");
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
    match client.score(7).expect("score rpc") {
        Reply::Score(parsed) => assert_eq!(parsed.customer, 7),
        other => panic!("salvaged customer must be servable: {other:?}"),
    }
    handle.request_shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Both checkpoint formats, end to end: two servers fed the identical
/// stream — one checkpointing in text, one in binary — recover to
/// bit-identical state, and every `SCORE` protocol line matches.
#[test]
fn text_and_binary_checkpoints_recover_identically() {
    use attrition_serve::protocol::format_score;
    use attrition_serve::CheckpointFormat;

    let (cfg, seg_store) = scenario(6, 6, 6);
    let spec = WindowSpec::months(cfg.start, 1);

    let run = |format: CheckpointFormat, tag: &str| {
        let dir = temp_dir(tag);
        let mut config = durable_config(spec, &dir, FaultPlan::none());
        let dcfg = config.durability.as_mut().unwrap();
        dcfg.checkpoint_format = format;
        // Checkpoint aggressively so recovery actually reads the format
        // under test instead of replaying the whole WAL.
        dcfg.checkpoint_every_requests = 16;
        let handle = server::start(config).expect("server starts");
        let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
        for receipt in chronological(&seg_store) {
            let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
            match client.ingest(receipt.customer.raw(), receipt.date, &items) {
                Ok(Reply::Closed(_)) => {}
                other => panic!("unexpected ingest reply: {other:?}"),
            }
        }
        client.send("SHUTDOWN").expect("shutdown rpc");
        let summary = handle.join();
        assert!(summary.checkpoint_error.is_none(), "clean shutdown");
        assert!(summary.checkpoints >= 1);
        let (recovered, stats) = recover(&dir, None).expect("recovery succeeds");
        assert_eq!(stats.replayed, 0, "clean shutdown truncates the WAL");
        let _ = std::fs::remove_dir_all(&dir);
        recovered
    };

    let from_text = run(CheckpointFormat::Text, "fmt_text");
    let from_binary = run(CheckpointFormat::Binary, "fmt_binary");
    assert_eq!(
        from_text.snapshot(),
        from_binary.snapshot(),
        "the two formats must restore the same state"
    );
    for customer in from_text.customer_ids() {
        let a = from_text.preview(customer).expect("tracked");
        let b = from_binary.preview(customer).expect("tracked");
        assert_eq!(
            format_score(customer, &a),
            format_score(customer, &b),
            "SCORE lines must be bit-identical across formats"
        );
    }
}

/// Recovery must fall back past a corrupt *binary* checkpoint to an
/// older valid one — same contract the text format already has.
#[test]
fn corrupt_binary_checkpoint_falls_back_to_older() {
    use attrition_serve::checkpoint;

    let dir = temp_dir("binfallback");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let mut monitor = StabilityMonitor::new(spec, StabilityParams::PAPER).with_max_explanations(5);
    monitor.ingest(
        CustomerId::new(1),
        Date::from_ymd(2012, 5, 2).unwrap(),
        &Basket::from_raw(&[1, 4]),
    );
    let older_snapshot = monitor.snapshot();
    checkpoint::write_binary(&dir, 1, &monitor.snapshot_bytes()).expect("older checkpoint");

    monitor.ingest(
        CustomerId::new(2),
        Date::from_ymd(2012, 5, 3).unwrap(),
        &Basket::from_raw(&[2]),
    );
    let newer = checkpoint::write_binary(&dir, 2, &monitor.snapshot_bytes()).expect("newer");
    // Flip one bit in the newest checkpoint's body: its CRC must fail.
    let mut bytes = std::fs::read(&newer).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&newer, &bytes).unwrap();
    std::fs::write(dir.join("wal.log"), b"").unwrap();

    let (recovered, stats) = recover(&dir, None).expect("fallback succeeds");
    assert_eq!(stats.corrupt_checkpoints, 1, "{stats:?}");
    assert_eq!(stats.checkpoint_lsn, Some(1));
    assert_eq!(recovered.snapshot(), older_snapshot);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fallback crosses formats: a corrupt binary checkpoint falls back to
/// an older *text* one, and vice versa — the walk is format-blind.
#[test]
fn fallback_crosses_checkpoint_formats() {
    use attrition_serve::checkpoint;

    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let mut monitor = StabilityMonitor::new(spec, StabilityParams::PAPER).with_max_explanations(5);
    monitor.ingest(
        CustomerId::new(9),
        Date::from_ymd(2012, 5, 2).unwrap(),
        &Basket::from_raw(&[3, 5]),
    );
    let good_text = monitor.snapshot();
    let good_bytes = monitor.snapshot_bytes();
    monitor.ingest(
        CustomerId::new(10),
        Date::from_ymd(2012, 5, 4).unwrap(),
        &Basket::from_raw(&[6]),
    );

    // Case A: corrupt binary on top, valid text underneath.
    let dir = temp_dir("crossfmt_a");
    std::fs::create_dir_all(&dir).unwrap();
    checkpoint::write(&dir, 1, &good_text).expect("text checkpoint");
    let newer = checkpoint::write_binary(&dir, 2, &monitor.snapshot_bytes()).expect("binary");
    let mut bytes = std::fs::read(&newer).unwrap();
    bytes.truncate(bytes.len() / 2);
    std::fs::write(&newer, &bytes).unwrap();
    std::fs::write(dir.join("wal.log"), b"").unwrap();
    let (recovered, stats) = recover(&dir, None).expect("falls back to text");
    assert_eq!(stats.checkpoint_lsn, Some(1), "{stats:?}");
    assert_eq!(recovered.snapshot(), good_text);
    let _ = std::fs::remove_dir_all(&dir);

    // Case B: corrupt text on top, valid binary underneath.
    let dir = temp_dir("crossfmt_b");
    std::fs::create_dir_all(&dir).unwrap();
    checkpoint::write_binary(&dir, 1, &good_bytes).expect("binary checkpoint");
    let newer = checkpoint::write(&dir, 2, &monitor.snapshot()).expect("text");
    let mut text = std::fs::read(&newer).unwrap();
    text.truncate(text.len() - 4);
    std::fs::write(&newer, &text).unwrap();
    std::fs::write(dir.join("wal.log"), b"").unwrap();
    let (recovered, stats) = recover(&dir, None).expect("falls back to binary");
    assert_eq!(stats.checkpoint_lsn, Some(1), "{stats:?}");
    assert_eq!(recovered.snapshot(), good_text);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A binary checkpoint from a future format version is a corrupt
/// checkpoint (skipped with fallback), not a panic and not a load.
#[test]
fn future_version_binary_checkpoint_is_skipped() {
    use attrition_serve::checkpoint;

    let dir = temp_dir("binversion");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let mut monitor = StabilityMonitor::new(spec, StabilityParams::PAPER).with_max_explanations(5);
    monitor.ingest(
        CustomerId::new(3),
        Date::from_ymd(2012, 5, 2).unwrap(),
        &Basket::from_raw(&[8]),
    );
    checkpoint::write_binary(&dir, 1, &monitor.snapshot_bytes()).expect("older checkpoint");
    let older_snapshot = monitor.snapshot();

    let newer = checkpoint::write_binary(&dir, 2, &monitor.snapshot_bytes()).expect("newer");
    let mut bytes = std::fs::read(&newer).unwrap();
    bytes[7] = b'9'; // ATTRCKP9: framing from the future
    std::fs::write(&newer, &bytes).unwrap();
    std::fs::write(dir.join("wal.log"), b"").unwrap();

    let (recovered, stats) = recover(&dir, None).expect("version skip succeeds");
    assert_eq!(stats.corrupt_checkpoints, 1, "{stats:?}");
    assert_eq!(stats.checkpoint_lsn, Some(1));
    assert_eq!(recovered.snapshot(), older_snapshot);
    let _ = std::fs::remove_dir_all(&dir);
}
