//! End-to-end server tests: a real listener on an ephemeral port, real
//! TCP clients, datagen scenarios — asserting the served scores are
//! bit-identical to the offline pipeline, backpressure rejects instead
//! of buffering, and graceful shutdown writes a restorable checkpoint.

use attrition_core::{StabilityMonitor, StabilityParams};
use attrition_datagen::ScenarioConfig;
use attrition_serve::client::{Client, Reply};
use attrition_serve::protocol::ParsedScore;
use attrition_serve::server::{self, ServerConfig};
use attrition_serve::shard::ShardedMonitor;
use attrition_store::{chronological, ReceiptStore, WindowSpec};
use attrition_types::{Basket, Date};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn scenario(n_loyal: usize, n_defectors: usize, n_months: u32) -> (ScenarioConfig, ReceiptStore) {
    let mut cfg = ScenarioConfig::small();
    cfg.n_loyal = n_loyal;
    cfg.n_defectors = n_defectors;
    cfg.n_months = n_months;
    cfg.onset_month = n_months / 2;
    let dataset = attrition_datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    (cfg, seg_store)
}

fn config(spec: WindowSpec) -> ServerConfig {
    let mut config = ServerConfig::new("127.0.0.1:0", spec, StabilityParams::PAPER);
    config.read_timeout = Duration::from_secs(2);
    config
}

/// Sort key shared by online and offline outputs: per-customer windows
/// are unique, so `(customer, window)` totally orders closed windows.
fn normalize(mut scores: Vec<(u64, u32, u64)>) -> Vec<(u64, u32, u64)> {
    scores.sort_unstable();
    scores
}

#[test]
fn served_scores_bit_identical_to_offline_pipeline() {
    let (cfg, seg_store) = scenario(15, 15, 12);
    let spec = WindowSpec::months(cfg.start, 2);
    let end = cfg.start.add_months(cfg.n_months as i32);

    // Offline reference: one monitor over the chronological replay.
    let mut offline = StabilityMonitor::new(spec, StabilityParams::PAPER);
    let mut offline_closed: Vec<(u64, u32, u64)> = Vec::new();
    for receipt in chronological(&seg_store) {
        let basket = Basket::new(receipt.items.to_vec());
        for closed in offline.ingest(receipt.customer, receipt.date, &basket) {
            offline_closed.push((
                closed.customer.raw(),
                closed.point.window.raw(),
                closed.point.value.to_bits(),
            ));
        }
    }
    for closed in offline.flush_until(end) {
        offline_closed.push((
            closed.customer.raw(),
            closed.point.window.raw(),
            closed.point.value.to_bits(),
        ));
    }

    // Online: the same receipts over TCP, sharded 4 ways.
    let handle = server::start(config(spec)).expect("server starts");
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
    let mut online_closed: Vec<(u64, u32, u64)> = Vec::new();
    let push_all = |closed: &[ParsedScore], online: &mut Vec<(u64, u32, u64)>| {
        for c in closed {
            online.push((c.customer, c.window, c.value.to_bits()));
        }
    };
    for receipt in chronological(&seg_store) {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        match client
            .ingest(receipt.customer.raw(), receipt.date, &items)
            .expect("ingest rpc")
        {
            Reply::Closed(closed) => push_all(&closed, &mut online_closed),
            other => panic!("unexpected ingest reply: {other:?}"),
        }
    }
    match client.flush(end).expect("flush rpc") {
        Reply::Closed(closed) => push_all(&closed, &mut online_closed),
        other => panic!("unexpected flush reply: {other:?}"),
    }

    assert_eq!(
        normalize(offline_closed),
        normalize(online_closed),
        "served scores diverged from the offline pipeline"
    );

    // Live previews agree bit-for-bit too.
    for customer in offline.customer_ids().into_iter().take(3) {
        let raw = customer.raw();
        let offline_preview = offline.preview(customer).expect("tracked");
        match client.score(raw).expect("score rpc") {
            Reply::Score(s) => {
                assert_eq!(s.window, offline_preview.window.raw());
                assert_eq!(s.value.to_bits(), offline_preview.value.to_bits());
            }
            other => panic!("unexpected score reply: {other:?}"),
        }
    }

    match client.send("SHUTDOWN").expect("shutdown rpc") {
        Reply::Ok(message) => assert_eq!(message, "draining"),
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    let summary = handle.join();
    assert_eq!(summary.errors, 0, "no request may have errored");
    assert_eq!(summary.customers, 30);
}

/// Satellite: 1 shard and 8 shards produce identical `WindowClosed`
/// scores per customer on a 200-customer scenario (ordering normalized),
/// mirroring PR 1's 1-vs-8-thread bit-identity test.
#[test]
fn sharded_vs_single_bit_identity_200_customers() {
    let (cfg, seg_store) = scenario(100, 100, 10);
    let spec = WindowSpec::months(cfg.start, 2);
    let end = cfg.start.add_months(cfg.n_months as i32);

    let run = |n_shards: usize| -> Vec<(u64, u32, u64, u64, u64)> {
        let sharded = ShardedMonitor::new(n_shards, spec, StabilityParams::PAPER, 5);
        let mut out = Vec::new();
        for receipt in chronological(&seg_store) {
            let basket = Basket::new(receipt.items.to_vec());
            for closed in sharded
                .ingest(receipt.customer, receipt.date, &basket)
                .expect("chronological replay is in order")
            {
                out.push((
                    closed.customer.raw(),
                    closed.point.window.raw(),
                    closed.point.value.to_bits(),
                    closed.point.present_significance.to_bits(),
                    closed.point.total_significance.to_bits(),
                ));
            }
        }
        for closed in sharded.flush_until(end) {
            out.push((
                closed.customer.raw(),
                closed.point.window.raw(),
                closed.point.value.to_bits(),
                closed.point.present_significance.to_bits(),
                closed.point.total_significance.to_bits(),
            ));
        }
        out.sort_unstable();
        out
    };

    let single = run(1);
    let eight = run(8);
    assert_eq!(single.len(), eight.len());
    assert_eq!(single, eight, "shard count changed the scores");
    // 200 customers really were scored.
    let customers: std::collections::HashSet<u64> = single.iter().map(|r| r.0).collect();
    assert_eq!(customers.len(), 200);
}

#[test]
fn shutdown_drains_and_written_snapshot_restores_equivalently() {
    let (cfg, seg_store) = scenario(10, 10, 8);
    let spec = WindowSpec::months(cfg.start, 2);
    let snapshot_path = std::env::temp_dir().join(format!(
        "attrition_serve_snapshot_{}.csv",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&snapshot_path);

    let mut server_config = config(spec);
    server_config.snapshot_path = Some(snapshot_path.clone());
    let handle = server::start(server_config).expect("server starts");

    // A second connection sits idle while we shut down — the drain must
    // not hang on it past the read timeout.
    let idle = Client::connect(handle.local_addr(), TIMEOUT).expect("idle connects");

    let mut offline = StabilityMonitor::new(spec, StabilityParams::PAPER);
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
    for receipt in chronological(&seg_store) {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        client
            .ingest(receipt.customer.raw(), receipt.date, &items)
            .expect("ingest rpc");
        offline.ingest(
            receipt.customer,
            receipt.date,
            &Basket::new(receipt.items.to_vec()),
        );
    }
    client.send("SHUTDOWN").expect("shutdown rpc");
    let summary = handle.join();
    drop(idle);
    assert_eq!(
        summary.snapshot_path.as_deref(),
        Some(snapshot_path.as_path())
    );
    assert_eq!(summary.customers, 20);

    // The checkpoint restores to an equivalent monitor: same customers,
    // bit-identical previews and futures, at any shard count.
    let text = std::fs::read_to_string(&snapshot_path).expect("snapshot written");
    for n_shards in [1usize, 8] {
        let restored = ShardedMonitor::restore(&text, n_shards).expect("snapshot restores");
        assert_eq!(restored.num_customers(), offline.num_customers());
        for customer in offline.customer_ids() {
            let a = offline.preview(customer).expect("tracked offline");
            let b = restored.preview(customer).expect("tracked restored");
            assert_eq!(a.window, b.window);
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        // Futures agree too: flush both to the horizon.
        let end = cfg.start.add_months(cfg.n_months as i32 + 2);
        let restored_closed = restored.flush_until(end);
        let mut offline_restored =
            StabilityMonitor::restore(&text).expect("single monitor restores");
        let offline_closed = offline_restored.flush_until(end);
        assert_eq!(restored_closed.len(), offline_closed.len());
        for (x, y) in restored_closed.iter().zip(&offline_closed) {
            assert_eq!(x.customer, y.customer);
            assert_eq!(x.point.window, y.point.window);
            assert_eq!(x.point.value.to_bits(), y.point.value.to_bits());
        }
    }

    // A new server can resume from the checkpoint.
    let restored = ShardedMonitor::restore(&text, 4).expect("snapshot restores");
    let handle = server::start_with(config(spec), restored).expect("restored server starts");
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");
    let probe = offline.customer_ids()[0];
    match client.score(probe.raw()).expect("score rpc") {
        Reply::Score(s) => {
            let expected = offline.preview(probe).unwrap();
            assert_eq!(s.value.to_bits(), expected.value.to_bits());
        }
        other => panic!("unexpected score reply: {other:?}"),
    }
    client.send("SHUTDOWN").expect("shutdown rpc");
    handle.join();
    let _ = std::fs::remove_file(&snapshot_path);
}

#[test]
fn saturated_pool_answers_err_busy() {
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let mut server_config = config(spec);
    server_config.workers = 1;
    server_config.queue_capacity = 1;
    let handle = server::start(server_config).expect("server starts");
    let addr = handle.local_addr();

    // Occupy the single worker with a live connection...
    let mut occupant = Client::connect(addr, TIMEOUT).expect("connects");
    assert_eq!(occupant.send("PING").expect("ping rpc"), Reply::Pong);
    // ...fill the one queue slot with a second connection...
    let waiting = TcpStream::connect(addr).expect("connects");
    std::thread::sleep(Duration::from_millis(100));
    // ...and watch the third get rejected fast instead of queued.
    let rejected = TcpStream::connect(addr).expect("connects");
    rejected
        .set_read_timeout(Some(TIMEOUT))
        .expect("sets timeout");
    let mut line = String::new();
    BufReader::new(rejected)
        .read_line(&mut line)
        .expect("reads rejection");
    assert_eq!(line.trim_end(), "ERR busy");

    drop(waiting);
    occupant.send("SHUTDOWN").expect("shutdown rpc");
    let summary = handle.join();
    assert!(summary.rejected_busy >= 1, "rejection must be counted");
}

/// Every `ERR busy` line a client actually reads is one tick of the
/// server's `rejected_busy` counter — the two must agree *exactly*, so
/// capacity planning off the metric never under-counts shed load.
#[test]
fn err_busy_replies_match_the_rejected_counter_exactly() {
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let mut server_config = config(spec);
    server_config.workers = 1;
    server_config.queue_capacity = 1;
    let handle = server::start(server_config).expect("server starts");
    let addr = handle.local_addr();

    // Hold the single worker with a live connection and park a second
    // one in the only queue slot.
    let mut occupant = Client::connect(addr, TIMEOUT).expect("connects");
    assert_eq!(occupant.send("PING").expect("ping rpc"), Reply::Pong);
    let waiting = TcpStream::connect(addr).expect("connects");
    std::thread::sleep(Duration::from_millis(100));

    // Every further connection must bounce; count the ERR busy replies
    // we are actually served.
    let mut seen_busy = 0u64;
    for i in 0..8 {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(TIMEOUT))
            .expect("sets timeout");
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .expect("reads rejection");
        assert_eq!(line.trim_end(), "ERR busy", "connection {i}");
        seen_busy += 1;
    }

    drop(waiting);
    occupant.send("SHUTDOWN").expect("shutdown rpc");
    let summary = handle.join();
    assert_eq!(
        summary.rejected_busy, seen_busy,
        "rejected_busy diverged from the ERR busy replies clients saw"
    );
}

#[test]
fn stats_returns_json_metrics_and_errors_are_reported() {
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let handle = server::start(config(spec)).expect("server starts");
    let mut client = Client::connect(handle.local_addr(), TIMEOUT).expect("connects");

    client
        .ingest(1, Date::from_ymd(2012, 5, 3).unwrap(), &[1, 2])
        .expect("ingest rpc");
    // Protocol errors answer ERR but keep the connection alive.
    match client.send("FROB 1 2 3").expect("bad verb rpc") {
        Reply::Err(message) => assert!(message.contains("unknown verb")),
        other => panic!("unexpected reply: {other:?}"),
    }
    match client.score(999).expect("score rpc") {
        Reply::Err(message) => assert!(message.contains("unknown customer")),
        other => panic!("unexpected reply: {other:?}"),
    }
    // Out-of-order ingest is rejected, not a worker panic.
    match client
        .ingest(1, Date::from_ymd(2012, 1, 1).unwrap(), &[1])
        .expect("ingest rpc")
    {
        // Date precedes the grid origin: ignored, closes nothing.
        Reply::Closed(closed) => assert!(closed.is_empty()),
        other => panic!("unexpected reply: {other:?}"),
    }
    client
        .ingest(1, Date::from_ymd(2012, 8, 1).unwrap(), &[1])
        .expect("ingest rpc");
    match client
        .ingest(1, Date::from_ymd(2012, 6, 1).unwrap(), &[1])
        .expect("ingest rpc")
    {
        Reply::Err(message) => assert!(message.contains("out-of-order"), "{message}"),
        other => panic!("unexpected reply: {other:?}"),
    }

    match client.send("STATS").expect("stats rpc") {
        Reply::Stats(json) => {
            assert!(json.starts_with('{') && json.ends_with('}'));
            assert!(json.contains("\"serve.requests\""), "{json}");
            assert!(json.contains("serve.shard.0.customers"), "{json}");
            assert!(json.contains("serve.latency.ingest"), "{json}");
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }

    client.send("SHUTDOWN").expect("shutdown rpc");
    let summary = handle.join();
    assert!(summary.errors >= 2);
    assert_eq!(summary.customers, 1);
}

#[test]
fn idle_connections_close_at_the_read_timeout() {
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let mut server_config = config(spec);
    server_config.read_timeout = Duration::from_millis(200);
    let handle = server::start(server_config).expect("server starts");

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connects");
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("sets timeout");
    std::thread::sleep(Duration::from_millis(700));
    // The server has hung up; the next request gets EOF, not a reply.
    let _ = stream.write_all(b"PING\n");
    let mut line = String::new();
    let n = BufReader::new(stream).read_line(&mut line).unwrap_or(0);
    assert_eq!(n, 0, "expected EOF after idle timeout, got {line:?}");

    handle.request_shutdown();
    handle.join();
}
