//! Property tests for the wire protocol, plus a malformed-frame corpus
//! against a live server.
//!
//! The encode side (`Request::to_line`, `format_score`) and the decode
//! side (`Request::parse`, `parse_score_line`) must be exact inverses on
//! the canonical wire forms — the WAL stores `to_line` output and
//! recovery replays it through `parse`, so any asymmetry silently
//! corrupts recovered state. The corpus half checks the server's frame
//! reader: oversize lines, embedded newlines, and invalid UTF-8 must be
//! answered with a graceful `ERR` on a connection that stays alive, not
//! a panic or a disconnect loop.

use attrition_core::{StabilityParams, StabilityPoint};
use attrition_serve::protocol::{format_score, parse_score_line, Request};
use attrition_serve::server::{self, ServerConfig, MAX_LINE_BYTES};
use attrition_store::WindowSpec;
use attrition_types::{CustomerId, Date, ItemId, WindowIndex};
use attrition_util::check::{forall, gen_ascii_string, gen_vec};
use attrition_util::Rng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

/// A random valid calendar date (day capped at 28 so every month works).
fn gen_date(rng: &mut Rng) -> Date {
    let year = rng.i64_in(1990, 2100) as i32;
    let month = 1 + rng.u64_below(12) as u32;
    let day = 1 + rng.u64_below(28) as u32;
    Date::from_ymd(year, month, day).expect("generated date is valid")
}

/// A random request covering every variant, with boundary-heavy ids
/// (0 and the type maxima show up often enough to matter).
fn gen_request(rng: &mut Rng) -> Request {
    let customer = |rng: &mut Rng| {
        CustomerId::new(match rng.u64_below(8) {
            0 => 0,
            1 => u64::MAX,
            _ => rng.next_u64() >> rng.u64_below(64),
        })
    };
    match rng.u64_below(7) {
        0 => Request::Ping,
        1 => {
            let items = gen_vec(rng, 0, 6, |rng| {
                ItemId::new(match rng.u64_below(8) {
                    0 => 0,
                    1 => u32::MAX,
                    _ => rng.next_u64() as u32,
                })
            });
            Request::Ingest(customer(rng), gen_date(rng), items)
        }
        2 => Request::Score(customer(rng)),
        3 => Request::Flush(gen_date(rng)),
        4 => Request::Snapshot,
        5 => Request::Stats,
        _ => Request::Shutdown,
    }
}

/// A finite f64 drawn from raw bits — covers subnormals, negative zero,
/// and infinities; NaN is mapped away because its Display form loses the
/// payload bits.
fn gen_f64(rng: &mut Rng) -> f64 {
    let x = f64::from_bits(rng.next_u64());
    if x.is_nan() {
        0.0
    } else {
        x
    }
}

#[test]
fn requests_roundtrip_their_canonical_wire_line() {
    forall(512, gen_request, |request| {
        let line = request.to_line();
        let parsed = Request::parse(&line).expect("canonical line parses");
        assert_eq!(&parsed, request, "roundtrip changed the request: {line:?}");
        // to_line is a fixed point: re-encoding the parsed request gives
        // the identical wire bytes (what the WAL stores).
        assert_eq!(parsed.to_line(), line);
    });
}

#[test]
fn score_lines_roundtrip_random_points_bit_identically() {
    forall(
        512,
        |rng| {
            let customer = CustomerId::new(rng.next_u64());
            let point = StabilityPoint {
                window: WindowIndex::new(rng.next_u64() as u32),
                value: gen_f64(rng),
                present_significance: gen_f64(rng),
                total_significance: gen_f64(rng),
            };
            (customer, point)
        },
        |(customer, point)| {
            let parsed = parse_score_line(&format_score(*customer, point)).expect("parses");
            assert_eq!(parsed.customer, customer.raw());
            assert_eq!(parsed.window, point.window.raw());
            assert_eq!(parsed.value.to_bits(), point.value.to_bits());
            assert_eq!(
                parsed.present.to_bits(),
                point.present_significance.to_bits()
            );
            assert_eq!(parsed.total.to_bits(), point.total_significance.to_bits());
        },
    );
}

#[test]
fn parser_never_panics_on_arbitrary_lines() {
    // Random printable-ASCII junk, plus lines that start with a real
    // verb but carry a corrupted tail: parse must return, never panic,
    // and anything it accepts must re-encode to a parseable line.
    forall(
        2048,
        |rng| {
            let mut line = gen_ascii_string(rng, 0, 100);
            if rng.bernoulli(0.5) {
                let verb =
                    ["PING", "INGEST", "SCORE", "FLUSH", "SNAPSHOT", "STATS"][rng.usize_below(6)];
                line = format!("{verb} {line}");
            }
            line
        },
        |line| {
            if let Ok(request) = Request::parse(line) {
                let canonical = request.to_line();
                assert_eq!(Request::parse(&canonical).as_ref(), Ok(&request));
            }
        },
    );
}

fn start_test_server() -> (server::ServerHandle, TcpStream, BufReader<TcpStream>) {
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let mut config = ServerConfig::new("127.0.0.1:0", spec, StabilityParams::PAPER);
    config.read_timeout = Duration::from_secs(2);
    let handle = server::start(config).expect("server starts");
    let stream = TcpStream::connect(handle.local_addr()).expect("connects");
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("sets timeout");
    let reader = BufReader::new(stream.try_clone().expect("clones stream"));
    (handle, stream, reader)
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("reads reply");
    line.trim_end().to_owned()
}

#[test]
fn oversize_line_answers_err_and_keeps_the_connection() {
    let (handle, mut stream, mut reader) = start_test_server();

    let mut oversize = vec![b'A'; MAX_LINE_BYTES + 1024];
    oversize.push(b'\n');
    stream.write_all(&oversize).expect("writes oversize line");
    assert_eq!(
        read_reply(&mut reader),
        format!("ERR line too long (max {MAX_LINE_BYTES} bytes)")
    );

    // The connection survives and the next request is served normally.
    stream.write_all(b"PING\n").expect("writes ping");
    assert_eq!(read_reply(&mut reader), "PONG");

    handle.request_shutdown();
    handle.join();
}

#[test]
fn invalid_utf8_answers_err_and_keeps_the_connection() {
    let (handle, mut stream, mut reader) = start_test_server();

    // A corpus of non-UTF-8 frames: stray continuation bytes, an
    // overlong-truncated sequence, and a multi-byte char cut short.
    let corpus: [&[u8]; 3] = [
        b"SCORE \xff\xfe\n",
        b"\x80\x80\x80\n",
        b"PING \xe2\x82\n", // first two bytes of U+20AC, then EOL
    ];
    for frame in corpus {
        stream.write_all(frame).expect("writes frame");
        assert_eq!(
            read_reply(&mut reader),
            "ERR request is not valid UTF-8",
            "frame {frame:?}"
        );
        // Still alive after every bad frame.
        stream.write_all(b"PING\n").expect("writes ping");
        assert_eq!(read_reply(&mut reader), "PONG", "frame {frame:?}");
    }

    handle.request_shutdown();
    handle.join();
}

#[test]
fn embedded_newlines_split_into_separate_requests() {
    let (handle, mut stream, mut reader) = start_test_server();

    // One write, three frames: each newline terminates its own request
    // and each gets its own one-line reply, in order.
    stream
        .write_all(b"PING\nSCORE 999\nPING\n")
        .expect("writes batch");
    assert_eq!(read_reply(&mut reader), "PONG");
    assert!(
        read_reply(&mut reader).starts_with("ERR unknown customer"),
        "unknown customer must ERR"
    );
    assert_eq!(read_reply(&mut reader), "PONG");

    handle.request_shutdown();
    handle.join();
}

#[test]
fn batch_headers_never_panic_the_parser() {
    forall(
        1024,
        |rng| format!("BATCH {}", gen_ascii_string(rng, 0, 12)),
        |line| {
            let _ = attrition_serve::parse_batch_header(line);
        },
    );
}

#[test]
fn malformed_batch_headers_answer_one_err_and_keep_the_connection() {
    let (handle, mut stream, mut reader) = start_test_server();

    // Each bad header is rejected at the header line itself — nothing
    // after it is consumed, so the PING that follows each one is an
    // ordinary frame, not a swallowed "member".
    let corpus: [(&[u8], &str); 4] = [
        (b"BATCH 0\n", "ERR batch size must be at least 1"),
        (
            b"BATCH 1000000\n",
            "ERR batch size 1000000 exceeds the maximum of 4096",
        ),
        (b"BATCH\n", "ERR missing batch size after BATCH"),
        (
            b"BATCH 2 3\n",
            "ERR unexpected trailing field \"3\" after BATCH",
        ),
    ];
    for (frame, expected) in corpus {
        stream.write_all(frame).expect("writes frame");
        assert_eq!(read_reply(&mut reader), expected, "frame {frame:?}");
        stream.write_all(b"PING\n").expect("writes ping");
        assert_eq!(read_reply(&mut reader), "PONG", "frame {frame:?}");
    }

    handle.request_shutdown();
    handle.join();
}

#[test]
fn invalid_batch_members_reject_the_whole_frame_but_consume_it() {
    let (handle, mut stream, mut reader) = start_test_server();

    // A nested BATCH member invalidates the frame; all three announced
    // member lines are still consumed, so the connection stays framed
    // and the INGEST member is NOT applied (the SCORE after proves it).
    stream
        .write_all(b"BATCH 3\nINGEST 7 2012-05-04 1 2\nBATCH 2\nPING\n")
        .expect("writes frame");
    assert_eq!(
        read_reply(&mut reader),
        "ERR batch member 1: nested BATCH not allowed"
    );
    stream.write_all(b"SCORE 7\n").expect("writes score");
    assert_eq!(read_reply(&mut reader), "ERR unknown customer 7");

    // Invalid UTF-8 in a member: same whole-frame rejection.
    stream
        .write_all(b"BATCH 2\n\xff\xfe\nPING\n")
        .expect("writes frame");
    assert_eq!(
        read_reply(&mut reader),
        "ERR batch member 0: request is not valid UTF-8"
    );
    stream.write_all(b"PING\n").expect("writes ping");
    assert_eq!(read_reply(&mut reader), "PONG");

    handle.request_shutdown();
    handle.join();
}

#[test]
fn mixed_batches_answer_every_member_in_order() {
    let (handle, mut stream, mut reader) = start_test_server();

    // INGEST + SCORE + FLUSH + PING + a member parse error, one frame:
    // OKBATCH then one self-describing response per member, in order.
    stream
        .write_all(b"BATCH 5\nINGEST 9 2012-05-04 1 2\nSCORE 9\nFLUSH 2012-08-01\nPING\nBOGUS x\n")
        .expect("writes frame");
    assert_eq!(read_reply(&mut reader), "OKBATCH 5");
    assert_eq!(read_reply(&mut reader), "OK 0", "ingest closes nothing yet");
    assert!(
        read_reply(&mut reader).starts_with("SCORE 9 "),
        "score member answers inline"
    );
    // FLUSH past the ingested window closes every window before the
    // flush date: OK <n> + n CLOSED lines, all for customer 9.
    let flush_ack = read_reply(&mut reader);
    let closed: usize = flush_ack
        .strip_prefix("OK ")
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("flush member must ack OK <n>: {flush_ack:?}"));
    assert!(closed >= 1, "the ingested window must close: {flush_ack:?}");
    for _ in 0..closed {
        assert!(read_reply(&mut reader).starts_with("CLOSED 9 "));
    }
    assert_eq!(read_reply(&mut reader), "PONG");
    assert!(read_reply(&mut reader).starts_with("ERR unknown verb"));

    // The connection is reusable for the next (single) frame.
    stream.write_all(b"PING\n").expect("writes ping");
    assert_eq!(read_reply(&mut reader), "PONG");

    handle.request_shutdown();
    handle.join();
}

#[test]
fn truncated_batch_frames_execute_nothing() {
    let (handle, stream, mut reader) = start_test_server();

    // Announce 3 members, deliver 1, then drop the connection: the
    // frame never completed, so nothing in it may execute.
    {
        let mut half_open = stream;
        half_open
            .write_all(b"BATCH 3\nINGEST 5 2012-05-04 1\n")
            .expect("writes partial frame");
        // Dropping closes the socket mid-frame.
    }
    // No reply may arrive for the aborted frame.
    let mut line = String::new();
    let got = reader.read_line(&mut line).expect("reads EOF");
    assert_eq!(got, 0, "aborted batch must not be answered: {line:?}");

    // A fresh connection sees none of the partial batch's effects.
    let mut probe = TcpStream::connect(handle.local_addr()).expect("connects");
    probe.set_read_timeout(Some(TIMEOUT)).expect("sets timeout");
    let mut probe_reader = BufReader::new(probe.try_clone().expect("clones stream"));
    probe.write_all(b"SCORE 5\n").expect("writes score");
    assert_eq!(read_reply(&mut probe_reader), "ERR unknown customer 5");

    handle.request_shutdown();
    handle.join();
}
