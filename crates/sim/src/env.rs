//! The simulated environment: a logical clock and an in-memory
//! filesystem with crash semantics.
//!
//! [`SimStorage`] implements the serve stack's
//! [`Storage`](attrition_serve::Storage) seam over `BTreeMap`s (sorted,
//! so every iteration order is deterministic) and models exactly the
//! crash behaviors POSIX permits:
//!
//! - **unsynced data may tear**: at a crash, a file reverts to its last
//!   fsynced content plus a *seeded prefix* of whatever was appended
//!   since — the torn tails the WAL's CRC framing must detect;
//! - **namespace operations need a directory sync**: renames and
//!   removes sit in a pending journal until
//!   [`sync_dir`](attrition_serve::Storage::sync_dir); at a crash a
//!   seeded cut of the journal is rolled back *in order* (metadata
//!   journaling preserves ordering), which is how a crash strands a
//!   written-and-fsynced `checkpoint-*.ckpt.tmp` whose rename never
//!   became durable;
//! - **file creation settles with the file's own fsync** (the common
//!   journaled-filesystem behavior), so a synced WAL cannot vanish
//!   wholesale.
//!
//! [`SimClock`] is a logical clock: `now()` reads a counter,
//! `sleep(d)`/[`advance`](SimClock::advance) move it forward. Nothing
//! in a simulation ever reads wall time, so a "30 s" checkpoint
//! interval elapses purely because the event loop says so.

use attrition_serve::{Clock, SplitMix64, Storage};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Logical time behind a mutex; shared by the event loop and the engine.
#[derive(Debug, Default)]
pub struct SimClock {
    now: Mutex<Duration>,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Advance logical time by `d` (what the event loop does between
    /// events).
    pub fn advance(&self, d: Duration) {
        let mut now = self.now.lock().unwrap_or_else(|p| p.into_inner());
        *now += d;
    }
}

impl Clock for SimClock {
    fn now(&self) -> Duration {
        *self.now.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn sleep(&self, duration: Duration) {
        // A sleeping simulated thread just moves the world forward.
        self.advance(duration);
    }
}

#[derive(Debug, Clone)]
struct Entry {
    /// The live view (what reads observe).
    data: Vec<u8>,
    /// The on-disk view a crash reverts to; `None` until the first
    /// fsync of this file.
    durable: Option<Vec<u8>>,
}

/// A namespace operation not yet made durable by a directory sync.
#[derive(Debug, Clone)]
enum Pending {
    Create(PathBuf),
    Rename {
        from: PathBuf,
        to: PathBuf,
        displaced: Option<Entry>,
    },
    Remove {
        path: PathBuf,
        entry: Entry,
    },
}

#[derive(Debug, Default)]
struct SimFs {
    files: BTreeMap<PathBuf, Entry>,
    dirs: BTreeSet<PathBuf>,
    pending: Vec<Pending>,
}

/// Counters a simulation report can read back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Files torn (lost an unsynced suffix) across all crashes.
    pub torn_files: u64,
    /// Namespace operations rolled back across all crashes.
    pub rolled_back_ops: u64,
    /// Crashes simulated.
    pub crashes: u64,
}

/// The in-memory crash-faithful filesystem. See the module docs.
#[derive(Debug, Default)]
pub struct SimStorage {
    fs: Mutex<SimFs>,
    stats: Mutex<StorageStats>,
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl SimStorage {
    /// An empty filesystem.
    pub fn new() -> SimStorage {
        SimStorage::default()
    }

    /// Crash counters so far.
    pub fn stats(&self) -> StorageStats {
        *self.stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Simulate power loss: roll back a seeded suffix of the pending
    /// namespace journal (in reverse order — ordering is preserved, a
    /// later op never survives an earlier one's loss), then revert every
    /// file to its durable content plus a seeded prefix of its unsynced
    /// suffix (a torn tail). Afterwards the surviving state *is* the
    /// durable state, as a remounted disk would present it.
    pub fn crash(&self, rng: &mut SplitMix64) {
        let mut fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        stats.crashes += 1;
        let cut = rng.below(fs.pending.len() as u64 + 1) as usize;
        let rolled_back: Vec<Pending> = fs.pending.drain(cut..).collect();
        stats.rolled_back_ops += rolled_back.len() as u64;
        for op in rolled_back.into_iter().rev() {
            match op {
                Pending::Create(path) => {
                    fs.files.remove(&path);
                }
                Pending::Rename {
                    from,
                    to,
                    displaced,
                } => {
                    if let Some(entry) = fs.files.remove(&to) {
                        fs.files.insert(from, entry);
                    }
                    if let Some(entry) = displaced {
                        fs.files.insert(to, entry);
                    }
                }
                Pending::Remove { path, entry } => {
                    fs.files.insert(path, entry);
                }
            }
        }
        // Ops that survived the cut are now settled on disk.
        fs.pending.clear();
        for entry in fs.files.values_mut() {
            let durable = entry.durable.clone().unwrap_or_default();
            if entry.data.len() > durable.len() && entry.data.starts_with(&durable) {
                // A seeded prefix of the unsynced suffix made it out of
                // the page cache; the rest is torn off.
                let suffix = (entry.data.len() - durable.len()) as u64;
                let kept = rng.below(suffix + 1) as usize;
                if kept < suffix as usize {
                    stats.torn_files += 1;
                }
                entry.data.truncate(durable.len() + kept);
            } else if entry.durable.is_some() {
                entry.data = durable;
            } else {
                // Never synced and not an append extension (e.g. an
                // unsynced overwrite): nothing of it is guaranteed.
                let kept = rng.below(entry.data.len() as u64 + 1) as usize;
                if kept < entry.data.len() {
                    stats.torn_files += 1;
                }
                entry.data.truncate(kept);
            }
            entry.durable = Some(entry.data.clone());
        }
    }

    /// Raw file content (test/debug access without the `Storage` vtable).
    pub fn content(&self, path: &Path) -> Option<Vec<u8>> {
        let fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        fs.files.get(path).map(|e| e.data.clone())
    }
}

impl Storage for SimStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        fs.files
            .get(path)
            .map(|e| e.data.clone())
            .ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        if !fs.files.contains_key(path) {
            fs.pending.push(Pending::Create(path.to_owned()));
            fs.files.insert(
                path.to_owned(),
                Entry {
                    data: bytes.to_owned(),
                    durable: None,
                },
            );
        } else {
            let entry = fs.files.get_mut(path).expect("checked above");
            entry.data = bytes.to_owned();
        }
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        if !fs.files.contains_key(path) {
            fs.pending.push(Pending::Create(path.to_owned()));
            fs.files.insert(
                path.to_owned(),
                Entry {
                    data: bytes.to_owned(),
                    durable: None,
                },
            );
        } else {
            let entry = fs.files.get_mut(path).expect("checked above");
            entry.data.extend_from_slice(bytes);
        }
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        let entry = fs.files.get_mut(path).ok_or_else(|| not_found(path))?;
        entry.durable = Some(entry.data.clone());
        // A journaled filesystem commits the new file's directory entry
        // with its first data sync; pending renames/removes still need
        // the explicit directory sync.
        fs.pending
            .retain(|op| !matches!(op, Pending::Create(p) if p == path));
        Ok(())
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<u64> {
        let mut fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        let entry = fs.files.get_mut(path).ok_or_else(|| not_found(path))?;
        entry.data.resize(len as usize, 0);
        // Mirrors RealStorage::set_len, which syncs the truncation.
        entry.durable = Some(entry.data.clone());
        Ok(len)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        fs.files
            .get(path)
            .map(|e| e.data.len() as u64)
            .ok_or_else(|| not_found(path))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        let entry = fs.files.remove(from).ok_or_else(|| not_found(from))?;
        let displaced = fs.files.insert(to.to_owned(), entry);
        fs.pending.push(Pending::Rename {
            from: from.to_owned(),
            to: to.to_owned(),
            displaced,
        });
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        let entry = fs.files.remove(path).ok_or_else(|| not_found(path))?;
        fs.pending.push(Pending::Remove {
            path: path.to_owned(),
            entry,
        });
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        fs.pending.clear();
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        let mut names = Vec::new();
        for path in fs.files.keys() {
            if path.parent() == Some(dir) {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_owned());
                }
            }
        }
        Ok(names)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().unwrap_or_else(|p| p.into_inner());
        fs.dirs.insert(dir.to_owned());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn clock_advances_on_sleep() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.sleep(Duration::from_millis(250));
        clock.advance(Duration::from_millis(750));
        assert_eq!(clock.now(), Duration::from_secs(1));
    }

    #[test]
    fn synced_content_survives_a_crash_unsynced_tail_tears() {
        let storage = SimStorage::new();
        storage.append(&p("/d/wal.log"), b"durable-part").unwrap();
        storage.sync(&p("/d/wal.log")).unwrap();
        storage.append(&p("/d/wal.log"), b"-unsynced-tail").unwrap();
        let mut rng = SplitMix64::new(7);
        storage.crash(&mut rng);
        let content = storage.content(&p("/d/wal.log")).unwrap();
        assert!(content.starts_with(b"durable-part"), "{content:?}");
        assert!(content.len() <= b"durable-part-unsynced-tail".len());
        // Determinism: same seed, same outcome.
        let storage2 = SimStorage::new();
        storage2.append(&p("/d/wal.log"), b"durable-part").unwrap();
        storage2.sync(&p("/d/wal.log")).unwrap();
        storage2
            .append(&p("/d/wal.log"), b"-unsynced-tail")
            .unwrap();
        storage2.crash(&mut SplitMix64::new(7));
        assert_eq!(storage2.content(&p("/d/wal.log")).unwrap(), content);
    }

    #[test]
    fn never_synced_file_may_vanish_entirely() {
        // With the right seed, an unsynced file loses everything.
        for seed in 0..64 {
            let storage = SimStorage::new();
            storage.append(&p("/d/f"), b"abc").unwrap();
            storage.crash(&mut SplitMix64::new(seed));
            if storage.content(&p("/d/f")).unwrap().is_empty() {
                return;
            }
        }
        panic!("no seed in 0..64 emptied the unsynced file");
    }

    #[test]
    fn undurable_rename_rolls_back_stranding_the_tmp() {
        // atomic_write without the final sync_dir: write tmp, sync it,
        // rename — then crash with the rename still pending.
        for seed in 0..64 {
            let storage = SimStorage::new();
            storage
                .write(&p("/d/c.ckpt.tmp"), b"checkpoint-bytes")
                .unwrap();
            storage.sync(&p("/d/c.ckpt.tmp")).unwrap();
            storage
                .rename(&p("/d/c.ckpt.tmp"), &p("/d/c.ckpt"))
                .unwrap();
            storage.crash(&mut SplitMix64::new(seed));
            if storage.content(&p("/d/c.ckpt")).is_none() {
                // Rolled back: the tmp must be intact (it was synced).
                assert_eq!(
                    storage.content(&p("/d/c.ckpt.tmp")).unwrap(),
                    b"checkpoint-bytes"
                );
                return;
            }
            // Survived: the final name holds the full content.
            assert_eq!(
                storage.content(&p("/d/c.ckpt")).unwrap(),
                b"checkpoint-bytes"
            );
        }
        panic!("no seed in 0..64 rolled the rename back");
    }

    #[test]
    fn dir_sync_settles_renames() {
        let storage = SimStorage::new();
        storage.write(&p("/d/c.ckpt.tmp"), b"x").unwrap();
        storage.sync(&p("/d/c.ckpt.tmp")).unwrap();
        storage
            .rename(&p("/d/c.ckpt.tmp"), &p("/d/c.ckpt"))
            .unwrap();
        storage.sync_dir(&p("/d")).unwrap();
        for seed in 0..32 {
            // No pending ops: every crash preserves the rename.
            storage.crash(&mut SplitMix64::new(seed));
            assert_eq!(storage.content(&p("/d/c.ckpt")).unwrap(), b"x");
            assert!(storage.content(&p("/d/c.ckpt.tmp")).is_none());
        }
    }

    #[test]
    fn list_is_sorted_and_scoped_to_the_dir() {
        let storage = SimStorage::new();
        storage.write(&p("/d/b"), b"").unwrap();
        storage.write(&p("/d/a"), b"").unwrap();
        storage.write(&p("/other/c"), b"").unwrap();
        assert_eq!(storage.list(&p("/d")).unwrap(), vec!["a", "b"]);
        assert_eq!(storage.list(&p("/nope")).unwrap(), Vec::<String>::new());
    }
}
