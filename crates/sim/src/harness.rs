//! The simulation driver: a scripted client workload against the real
//! [`Engine`] under seeded message faults and crash-restarts.
//!
//! One [`run`] is one fully deterministic world: a [`SimConfig::seed`]
//! fixes the workload, every transport fault (drop / duplicate /
//! delay-reorder), every disk fault the [`FaultPlan`] injects inside the
//! WAL, where crashes land, and which unsynced bytes each crash tears
//! off. Re-running the same seed replays the identical interleaving —
//! that is what makes a failure printed by the 4096-seed sweep a
//! one-command repro instead of a flake.
//!
//! ## What is real and what is simulated
//!
//! Real, byte-for-byte the production code: `Engine::respond` (request
//! parsing, WAL-then-apply ordering, checkpoint triggers),
//! `wal.rs` framing and rollback, `checkpoint.rs` atomic writes,
//! `recovery.rs` restore+replay. Simulated: the clock
//! ([`SimClock`]), the disk ([`SimStorage`]), and the wire (this
//! module's delivery loop standing in for TCP).
//!
//! ## The invariants (DESIGN §11)
//!
//! After every recovery — mid-run crashes, clean restarts, and one
//! final mandatory crash — the harness checks, against its own op log:
//!
//! 1. **Durability floor.** Recovery must reach at least
//!    [`Engine::wal_synced_seq`] as captured the instant before the
//!    crash: no record the sync policy called durable may be lost.
//!    Under `SyncPolicy::Always` this implies every *acknowledged*
//!    `INGEST`/`FLUSH` survives (checked explicitly as well).
//! 2. **Exact prefix state.** The recovered monitor must be
//!    bit-identical (snapshot string equality) to a reference
//!    [`StabilityMonitor`] folded over exactly the surviving WAL prefix
//!    — so no un-logged (and in particular no never-acknowledged,
//!    never-executed) record is ever visible, and replay reproduces the
//!    out-of-order rejections the live server made.
//! 3. **Format interoperability.** Re-encoding the recovered state as
//!    a binary snapshot and restoring it again yields a bit-identical
//!    text snapshot. Each run checkpoints in the text or binary format
//!    (chosen per seed), so the sweep exercises recovery from both.
//!
//! Between crashes, every `SCORE` response is compared bit-for-bit
//! against a live reference monitor fed the applied mutations.

use crate::env::{SimClock, SimStorage};
use attrition_core::{StabilityMonitor, StabilityParams};
use attrition_serve::checkpoint::CheckpointFormat;
use attrition_serve::engine::{BatchScratch, DurabilityConfig, Engine};
use attrition_serve::protocol::{format_score, Request};
use attrition_serve::recovery::{recover_in, Fallback};
use attrition_serve::shard::ShardedMonitor;
use attrition_serve::wal::WAL_FILE;
use attrition_serve::{FaultPlan, SplitMix64, Storage, SyncPolicy};
use attrition_store::WindowSpec;
use attrition_types::{Basket, CustomerId, Date, ItemId};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A deliberately re-introduced bug, for proving the harness *can*
/// catch what it claims to catch (the sweep must fail, with a seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimBug {
    /// Undo recovery's torn-tail truncation: the garbage tail stays in
    /// the log, later appends land after it, and the *next* recovery
    /// silently loses every record behind the garbage — the exact
    /// failure mode `truncate_to_valid` exists to prevent.
    KeepTornTail,
}

/// One simulated world. Construct via [`SimConfig::for_seed`] (the
/// sweep's shape) or [`SimConfig::with_bug`] (the self-test shape), then
/// tweak fields as needed.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed: fixes workload, faults, crash points, torn bytes.
    pub seed: u64,
    /// Client operations scripted for the run.
    pub n_ops: u64,
    /// Customers the workload spreads over.
    pub n_customers: u64,
    /// Shards the engine routes across (scoring must stay bit-identical
    /// to a single monitor regardless).
    pub n_shards: usize,
    /// WAL sync policy — the durability contract under test.
    pub sync_policy: SyncPolicy,
    /// Fault schedule (disk faults run inside the real WAL; message and
    /// crash faults run in this harness).
    pub faults: FaultPlan,
    /// Checkpoint count trigger (0 disables).
    pub checkpoint_every_requests: u64,
    /// Checkpoint time trigger in *logical* time (None disables).
    pub checkpoint_every: Option<Duration>,
    /// On-disk checkpoint framing the engine writes — both formats must
    /// satisfy the same invariants.
    pub checkpoint_format: CheckpointFormat,
    /// Re-introduced bug, if self-testing the harness.
    pub bug: Option<SimBug>,
}

impl SimConfig {
    /// The sweep configuration for one seed: moderate fault rates
    /// everywhere, sync policy alternating by seed parity (`Always` on
    /// even seeds — where acked-survival is asserted — `Interval(3)` on
    /// odd ones, where only the sync floor is), and checkpoint format
    /// alternating on the next seed bit (so each `(policy, format)`
    /// pair is swept). Everything is a pure function of the seed —
    /// the repro command re-derives the same world, format included.
    pub fn for_seed(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            n_ops: 400,
            n_customers: 12,
            n_shards: 4,
            sync_policy: if seed.is_multiple_of(2) {
                SyncPolicy::Always
            } else {
                SyncPolicy::Interval(3)
            },
            faults: FaultPlan::seeded(seed),
            checkpoint_every_requests: 24,
            checkpoint_every: Some(Duration::from_secs(2)),
            checkpoint_format: if (seed >> 1).is_multiple_of(2) {
                CheckpointFormat::Binary
            } else {
                CheckpointFormat::Text
            },
            bug: None,
        }
    }

    /// [`for_seed`](SimConfig::for_seed) with a bug re-introduced and
    /// the conditions that expose it: an interval sync policy (so
    /// crashes produce torn tails) and periodic checkpoints off (so a
    /// checkpoint truncation cannot mask the kept garbage).
    pub fn with_bug(seed: u64, bug: SimBug) -> SimConfig {
        SimConfig {
            sync_policy: SyncPolicy::Interval(2),
            checkpoint_every_requests: 0,
            checkpoint_every: None,
            bug: Some(bug),
            ..SimConfig::for_seed(seed)
        }
    }
}

/// What one [`run`] did and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// The seed that reproduces everything below.
    pub seed: u64,
    /// Requests executed by the engine (duplicates included).
    pub ops: u64,
    /// Responses delivered back to the scripted client.
    pub acked: u64,
    /// Crash-restarts (faulted and the final mandatory one).
    pub crashes: u64,
    /// Crash-restarts caused by a WAL death between a batch's appends
    /// and its group-commit fsync (a subset of `crashes`).
    pub mid_commit_crashes: u64,
    /// Clean shutdown-and-recover cycles.
    pub clean_restarts: u64,
    /// Faults injected across transport, disk, and crash layers.
    pub faults_injected: u64,
    /// `SCORE` responses compared against the reference monitor.
    pub score_checks: u64,
    /// Individual invariant assertions evaluated.
    pub invariant_checks: u64,
    /// Mutations the WAL logged over the whole run.
    pub wal_records: u64,
    /// Customers live at the end.
    pub customers: usize,
    /// Invariant violations (empty = the run passed). The run stops at
    /// the first one — after it, engine and reference have diverged.
    pub violations: Vec<String>,
}

impl SimReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the violation, the seed, and the one-command repro if
    /// the run failed.
    pub fn assert_ok(&self) {
        if let Some(first) = self.violations.first() {
            panic!(
                "simulation seed {} violated an invariant: {first}\n  reproduce with: {}",
                self.seed,
                repro_command(self.seed)
            );
        }
    }
}

/// The exact command that replays a failing seed.
pub fn repro_command(seed: u64) -> String {
    format!(
        "ATTRITION_SIM_SEED={seed} cargo test -p attrition-sim --test sim repro_seed -- --nocapture"
    )
}

const ORIGIN: (i32, u32, u32) = (2012, 5, 1);
pub(crate) const MAX_EXPLANATIONS: usize = 5;
/// Ops per simulated month of workload time.
pub(crate) const OPS_PER_MONTH: u64 = 25;

pub(crate) fn origin() -> Date {
    Date::from_ymd(ORIGIN.0, ORIGIN.1, ORIGIN.2).expect("valid origin")
}

pub(crate) fn spec() -> WindowSpec {
    WindowSpec::months(origin(), 1)
}

/// One scripted client frame: a single request line, or a `BATCH`
/// frame's member lines. Transport faults (drop / duplicate / delay)
/// act on whole frames, exactly as they would on the wire.
#[derive(Debug, Clone)]
enum ScriptItem {
    Single(String),
    Batch(Vec<String>),
}

/// A mutating request the engine logged: what the invariant checks fold
/// over after each recovery.
#[derive(Debug)]
struct OpEntry {
    seq: u64,
    line: String,
    acked: bool,
    /// The response was `OK …` (not an out-of-order or injected-fault
    /// `ERR`), i.e. the op mutated the live state.
    applied: bool,
}

struct Sim {
    config: SimConfig,
    storage: Arc<SimStorage>,
    clock: Arc<SimClock>,
    dcfg: DurabilityConfig,
    engine: Engine,
    /// Live reference: a plain monitor fed every applied mutation, in
    /// delivery order — `SCORE` must match it bit-for-bit.
    mirror: StabilityMonitor,
    oplog: Vec<OpEntry>,
    transport_rng: SplitMix64,
    crash_rng: SplitMix64,
    ops: u64,
    acked: u64,
    crashes: u64,
    mid_commit_crashes: u64,
    clean_restarts: u64,
    transport_faults: u64,
    score_checks: u64,
    invariant_checks: u64,
    wal_records: u64,
    violations: Vec<String>,
}

pub(crate) fn fresh_monitor() -> StabilityMonitor {
    StabilityMonitor::new(spec(), StabilityParams::PAPER).with_max_explanations(MAX_EXPLANATIONS)
}

/// Apply one logged op the way `recovery.rs` replays it: mirror the
/// live out-of-order rejection, so a record the server answered `ERR`
/// to mutates nothing here either.
pub(crate) fn apply_replayed(monitor: &mut StabilityMonitor, line: &str) {
    match Request::parse(line).expect("the harness only logs valid mutations") {
        Request::Ingest(customer, date, items) => {
            let rejected = match (monitor.spec().window_of(date), monitor.preview(customer)) {
                (Some(window), Some(preview)) => window.raw() < preview.window.raw(),
                _ => false,
            };
            if !rejected {
                monitor.ingest(customer, date, &Basket::new(items));
            }
        }
        Request::Flush(date) => {
            monitor.flush_until(date);
        }
        other => panic!("non-mutating {:?} in the op log", other.verb()),
    }
}

/// Apply an op the engine *accepted* (answered `OK`) to the live mirror
/// — no rejection logic needed, the engine already decided.
pub(crate) fn apply_accepted(monitor: &mut StabilityMonitor, line: &str) {
    match Request::parse(line).expect("the harness only logs valid mutations") {
        Request::Ingest(customer, date, items) => {
            monitor.ingest(customer, date, &Basket::new(items));
        }
        Request::Flush(date) => {
            monitor.flush_until(date);
        }
        other => panic!("non-mutating {:?} in the op log", other.verb()),
    }
}

impl Sim {
    fn new(config: SimConfig) -> Sim {
        let storage: Arc<SimStorage> = Arc::new(SimStorage::new());
        let clock = Arc::new(SimClock::new());
        let dcfg = DurabilityConfig {
            wal_dir: PathBuf::from("/sim/wal"),
            sync_policy: config.sync_policy,
            checkpoint_every_requests: config.checkpoint_every_requests,
            checkpoint_every: config.checkpoint_every,
            keep_checkpoints: 2,
            checkpoint_format: config.checkpoint_format,
            fault_plan: Some(config.faults.clone()),
        };
        let monitor = ShardedMonitor::new(
            config.n_shards,
            spec(),
            StabilityParams::PAPER,
            MAX_EXPLANATIONS,
        );
        let engine = Engine::open_in(
            monitor,
            None,
            Some(&dcfg),
            1,
            Arc::clone(&storage) as Arc<dyn Storage>,
            Arc::clone(&clock) as Arc<dyn attrition_serve::Clock>,
        )
        .expect("in-memory engine open cannot fail");
        Sim {
            transport_rng: SplitMix64::new(config.seed ^ 0x7AA9_5EED_0000_0001),
            crash_rng: SplitMix64::new(config.seed ^ 0xC4A5_85EE_D000_0002),
            config,
            storage,
            clock,
            dcfg,
            engine,
            mirror: fresh_monitor(),
            oplog: Vec::new(),
            ops: 0,
            acked: 0,
            crashes: 0,
            mid_commit_crashes: 0,
            clean_restarts: 0,
            transport_faults: 0,
            score_checks: 0,
            invariant_checks: 0,
            wal_records: 0,
            violations: Vec::new(),
        }
    }

    /// One scripted request line for logical op index `i`: a mix of
    /// `INGEST` (dates advancing month by month, with occasional
    /// backdated receipts to exercise the out-of-order `ERR` path),
    /// `SCORE` (some on unknown customers), `FLUSH`, `PING`, and
    /// malformed lines.
    fn script_line(&self, rng: &mut SplitMix64, i: u64) -> String {
        let month = (i / OPS_PER_MONTH) as i32;
        let draw = rng.below(100);
        if draw < 60 {
            let customer = CustomerId::new(1 + rng.below(self.config.n_customers));
            let m = if rng.per_mille(80) {
                (month - 2).max(0) // backdated: may be out-of-order
            } else {
                month + rng.below(2) as i32
            };
            let (y, mo, _) = origin().add_months(m).ymd();
            let day = 1 + rng.below(28) as u32;
            let date = Date::from_ymd(y, mo, day).expect("clamped day is valid");
            let items: Vec<ItemId> = (0..1 + rng.below(4))
                .map(|_| ItemId::new(1 + rng.below(40) as u32))
                .collect();
            Request::Ingest(customer, date, items).to_line()
        } else if draw < 80 {
            let customer = CustomerId::new(1 + rng.below(self.config.n_customers + 4));
            Request::Score(customer).to_line()
        } else if draw < 88 {
            let (y, mo, _) = origin().add_months(month).ymd();
            Request::Flush(Date::from_ymd(y, mo, 1).unwrap()).to_line()
        } else if draw < 96 {
            "PING".to_owned()
        } else {
            format!("BOGUS {}", rng.below(100))
        }
    }

    /// The scripted client workload, pre-generated from the seed:
    /// `n_ops` request lines framed as a mix of single frames and
    /// `BATCH` frames of 2–6 members (~a quarter of the ops arrive
    /// batched, so both the single-op and group-commit WAL paths face
    /// every fault schedule).
    fn script(&self) -> VecDeque<ScriptItem> {
        let mut rng = SplitMix64::new(self.config.seed ^ 0x3077_0AD5_0000_0003);
        let mut frames = VecDeque::with_capacity(self.config.n_ops as usize);
        let mut i = 0u64;
        while i < self.config.n_ops {
            if rng.per_mille(120) {
                let k = 2 + rng.below(5);
                let mut members = Vec::with_capacity(k as usize);
                while (members.len() as u64) < k && i < self.config.n_ops {
                    members.push(self.script_line(&mut rng, i));
                    i += 1;
                }
                frames.push_back(ScriptItem::Batch(members));
            } else {
                frames.push_back(ScriptItem::Single(self.script_line(&mut rng, i)));
                i += 1;
            }
        }
        frames
    }

    fn violation(&mut self, message: String) {
        self.violations.push(message);
    }

    /// Execute one request against the engine (the simulated server
    /// side) and account for it: WAL sequence attribution, ack/applied
    /// tracking, live mirror update, `SCORE` bit-identity check.
    fn deliver(&mut self, line: &str, acked: bool) {
        let before = self.engine.wal_last_seq();
        let (_verb, response) = self.engine.respond(line);
        let after = self.engine.wal_last_seq();
        self.ops += 1;
        if acked {
            self.acked += 1;
        }
        match Request::parse(line) {
            Ok(Request::Ingest(..)) | Ok(Request::Flush(_)) => {
                let applied = response.starts_with("OK");
                if after > before {
                    self.wal_records += after - before;
                    self.oplog.push(OpEntry {
                        seq: after,
                        line: line.to_owned(),
                        acked,
                        applied,
                    });
                } else if applied {
                    self.violation(format!(
                        "mutation applied without a wal record: {line:?} -> {response:?}"
                    ));
                }
                if applied {
                    apply_accepted(&mut self.mirror, line);
                }
            }
            Ok(Request::Score(customer)) => {
                self.score_checks += 1;
                self.invariant_checks += 1;
                let expected = match self.mirror.preview(customer) {
                    Some(point) => format_score(customer, &point),
                    None => format!("ERR unknown customer {}", customer.raw()),
                };
                if response != expected {
                    self.violation(format!(
                        "SCORE diverged from the reference monitor: got {response:?}, \
                         expected {expected:?}"
                    ));
                }
            }
            _ => {}
        }
    }

    /// One frame, either shape.
    fn deliver_item(&mut self, item: &ScriptItem, acked: bool) {
        match item {
            ScriptItem::Single(line) => self.deliver(line, acked),
            ScriptItem::Batch(members) => self.deliver_batch(members, acked),
        }
    }

    /// Execute one `BATCH` frame through the real group-commit path
    /// ([`Engine::respond_batch`]) and account for every member using
    /// the engine's own [`MemberOutcome`] attribution — plus a
    /// cross-check that the attribution agrees with the response text.
    ///
    /// [`MemberOutcome`]: attrition_serve::MemberOutcome
    fn deliver_batch(&mut self, members: &[String], acked: bool) {
        let batch: Vec<String> = members.to_vec();
        let mut scratch = BatchScratch::new();
        let mut out = String::new();
        self.engine.respond_batch(&batch, &mut scratch, &mut out);
        let responses = split_member_responses(&out, members.len());
        let outcomes = scratch.outcomes().to_vec();
        for ((line, response), outcome) in members.iter().zip(&responses).zip(&outcomes) {
            self.ops += 1;
            if acked {
                self.acked += 1;
            }
            match Request::parse(line) {
                Ok(Request::Ingest(..)) | Ok(Request::Flush(_)) => {
                    self.invariant_checks += 1;
                    if outcome.applied != response.starts_with("OK") {
                        self.violation(format!(
                            "batch outcome disagrees with the member response: \
                             applied={} but response {response:?} for {line:?}",
                            outcome.applied
                        ));
                        return;
                    }
                    if outcome.logged {
                        self.wal_records += 1;
                        self.oplog.push(OpEntry {
                            seq: outcome.seq,
                            line: line.clone(),
                            acked,
                            applied: outcome.applied,
                        });
                    } else if outcome.applied {
                        self.violation(format!(
                            "batch mutation applied without a wal record: {line:?} -> {response:?}"
                        ));
                        return;
                    }
                    if outcome.applied {
                        apply_accepted(&mut self.mirror, line);
                    }
                }
                Ok(Request::Score(customer)) => {
                    self.score_checks += 1;
                    self.invariant_checks += 1;
                    let expected = match self.mirror.preview(customer) {
                        Some(point) => format_score(customer, &point),
                        None => format!("ERR unknown customer {}", customer.raw()),
                    };
                    if *response != expected {
                        self.violation(format!(
                            "batched SCORE diverged from the reference monitor: \
                             got {response:?}, expected {expected:?}"
                        ));
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    /// Fold the surviving WAL prefix (`seq <= floor`) into a fresh
    /// monitor — what the recovered state must equal bit-for-bit.
    fn fold_reference(&self, floor: u64) -> StabilityMonitor {
        let mut monitor = fresh_monitor();
        for entry in &self.oplog {
            if entry.seq <= floor {
                apply_replayed(&mut monitor, &entry.line);
            }
        }
        monitor
    }

    /// Kill the engine (optionally after a clean shutdown), crash the
    /// disk, run the real recovery, check the invariants, and bring a
    /// new engine up on the recovered state.
    fn restart(&mut self, clean: bool) {
        // Captured *before* the crash: the floor the sync policy
        // guarantees, and (after a clean shutdown) everything.
        if clean {
            self.clean_restarts += 1;
            let report = self.engine.shutdown_flush();
            if let Some(e) = report.checkpoint_error {
                // Possible under an injected-fault plan; the WAL still
                // holds the tail, which is exactly what recovery tests.
                eprintln!("sim: shutdown checkpoint failed under faults: {e}");
            }
        } else {
            self.crashes += 1;
        }
        let synced_floor = self.engine.wal_synced_seq();
        self.storage.crash(&mut self.crash_rng);

        let wal_path = self.dcfg.wal_dir.join(WAL_FILE);
        let pre_recovery_wal = match self.config.bug {
            Some(SimBug::KeepTornTail) => self.storage.content(&wal_path),
            None => None,
        };

        let fallback = Fallback {
            spec: spec(),
            params: StabilityParams::PAPER,
            max_explanations: MAX_EXPLANATIONS,
        };
        let (monitor, stats) = match recover_in(&*self.storage, &self.dcfg.wal_dir, Some(&fallback))
        {
            Ok(recovered) => recovered,
            Err(e) => {
                self.violation(format!("recovery failed: {e}"));
                return;
            }
        };
        let floor = stats.next_seq - 1;

        // Invariant 1a: the durability floor. Nothing the sync policy
        // called durable may be lost.
        self.invariant_checks += 1;
        if floor < synced_floor {
            self.violation(format!(
                "recovery lost durable records: reached seq {floor}, but seq {synced_floor} \
                 was fsynced before the crash"
            ));
            return;
        }
        // Invariant 1b: under `always`, every acknowledged applied
        // mutation is durable by contract, so it must have survived.
        if self.config.sync_policy == SyncPolicy::Always {
            self.invariant_checks += 1;
            if let Some(lost) = self
                .oplog
                .iter()
                .find(|e| e.acked && e.applied && e.seq > floor)
            {
                self.violation(format!(
                    "acked mutation lost under sync=always: seq {} {:?} (recovery reached {floor})",
                    lost.seq, lost.line
                ));
                return;
            }
        }
        // Invariant 2: the recovered state is bit-identical to the fold
        // of exactly the surviving prefix — no un-logged (in particular
        // no never-executed) record visible, out-of-order rejections
        // reproduced.
        self.invariant_checks += 1;
        let reference = self.fold_reference(floor);
        if reference.snapshot() != monitor.snapshot() {
            self.violation(format!(
                "recovered state diverges from the acknowledged prefix at seq {floor} \
                 ({} records folded): snapshots differ",
                self.oplog.iter().filter(|e| e.seq <= floor).count()
            ));
            return;
        }
        // Invariant 3: format interoperability. The recovered state,
        // re-encoded as a *binary* snapshot and restored again, must be
        // bit-identical to its text snapshot — whichever format the
        // engine was checkpointing in this run.
        self.invariant_checks += 1;
        match StabilityMonitor::restore_any(&monitor.snapshot_bytes()) {
            Ok(round_tripped) => {
                if round_tripped.snapshot() != monitor.snapshot() {
                    self.violation(format!(
                        "binary snapshot round-trip diverges after recovery at seq {floor} \
                         (checkpoint format {})",
                        self.config.checkpoint_format
                    ));
                    return;
                }
            }
            Err(e) => {
                self.violation(format!(
                    "binary snapshot of recovered state failed to restore: {e}"
                ));
                return;
            }
        }

        // Records above the floor are gone; their sequence numbers will
        // be reassigned by the reopened WAL.
        self.oplog.retain(|e| e.seq <= floor);
        self.mirror = reference;

        if self.config.bug == Some(SimBug::KeepTornTail) {
            // Re-introduce the bug: put the torn tail recovery just
            // truncated back at the end of the log, durably — as if
            // `truncate_to_valid` had never run.
            if let Some(pre) = pre_recovery_wal {
                let cur = self.storage.len(&wal_path).unwrap_or(0) as usize;
                if pre.len() > cur {
                    self.storage
                        .append(&wal_path, &pre[cur..])
                        .expect("sim append cannot fail");
                    self.storage.sync(&wal_path).expect("sim sync cannot fail");
                }
            }
        }

        let sharded = ShardedMonitor::from_monitor(monitor, self.config.n_shards);
        match Engine::open_in(
            sharded,
            None,
            Some(&self.dcfg),
            stats.next_seq,
            Arc::clone(&self.storage) as Arc<dyn Storage>,
            Arc::clone(&self.clock) as Arc<dyn attrition_serve::Clock>,
        ) {
            Ok(engine) => self.engine = engine,
            Err(e) => self.violation(format!("engine reopen failed after recovery: {e}")),
        }
    }

    fn run(mut self) -> SimReport {
        let plan = self.config.faults.clone();
        let mut pending = self.script();
        while let Some(item) = pending.pop_front() {
            if !self.violations.is_empty() {
                break;
            }
            self.clock
                .advance(Duration::from_millis(1 + self.transport_rng.below(40)));
            // Delay: the frame is delivered later — which reorders it
            // past the frames behind it.
            if plan.delay_message(&mut self.transport_rng) && !pending.is_empty() {
                self.transport_faults += 1;
                let slot = (1 + self.transport_rng.below(4) as usize).min(pending.len());
                pending.insert(slot, item);
                continue;
            }
            if plan.drop_message(&mut self.transport_rng) {
                self.transport_faults += 1;
                if self.transport_rng.below(2) == 0 {
                    // Frame lost in flight: the server never saw it.
                } else {
                    // Response lost: executed server-side, never acked.
                    self.deliver_item(&item, false);
                }
            } else {
                self.deliver_item(&item, true);
                if plan.duplicate_message(&mut self.transport_rng) {
                    // A duplicated frame: the server executes it twice;
                    // the client sees (one of) the responses.
                    self.transport_faults += 1;
                    self.deliver_item(&item, true);
                }
            }
            if self.violations.is_empty() {
                if self.engine.wal_crashed() {
                    // A fault froze the WAL — for batches, the
                    // mid-group-commit window where a whole frame sits
                    // in the file with none of it durable or acked.
                    // The process is as good as dead: crash-restart and
                    // prove the floor held.
                    if matches!(item, ScriptItem::Batch(_)) {
                        self.mid_commit_crashes += 1;
                    }
                    self.restart(false);
                } else if plan.crash_now(&mut self.crash_rng) {
                    self.restart(false);
                } else if self.config.bug.is_none() && self.crash_rng.per_mille(4) {
                    self.restart(true);
                }
            }
        }
        // The mandatory final crash: every run ends by proving the
        // current acknowledged state survives power loss.
        if self.violations.is_empty() {
            self.restart(false);
        }
        let storage = self.storage.stats();
        SimReport {
            seed: self.config.seed,
            ops: self.ops,
            acked: self.acked,
            crashes: self.crashes,
            mid_commit_crashes: self.mid_commit_crashes,
            clean_restarts: self.clean_restarts,
            faults_injected: self.transport_faults
                + storage.torn_files
                + storage.rolled_back_ops
                + self.crashes,
            score_checks: self.score_checks,
            invariant_checks: self.invariant_checks,
            wal_records: self.wal_records,
            customers: self.engine.num_customers(),
            violations: self.violations,
        }
    }
}

/// Run one simulated world to completion. See the module docs for what
/// is checked; [`SimReport::assert_ok`] turns a failure into a panic
/// carrying the seed and the repro command.
pub fn run(config: &SimConfig) -> SimReport {
    Sim::new(config.clone()).run()
}

/// Split an `OKBATCH` frame body back into its per-member responses.
/// Member responses are self-describing — `OK <n>` announces `n`
/// follow-up `CLOSED` lines — so the split needs no other framing.
fn split_member_responses(body: &str, n: usize) -> Vec<String> {
    let mut lines = body.lines();
    let header = lines.next().unwrap_or("");
    debug_assert!(
        header.starts_with("OKBATCH "),
        "not a batch body: {header:?}"
    );
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        let first = lines.next().unwrap_or("");
        let extra = first
            .strip_prefix("OK ")
            .and_then(|rest| rest.trim().parse::<usize>().ok())
            .unwrap_or(0);
        let mut response = first.to_owned();
        for _ in 0..extra {
            response.push('\n');
            response.push_str(lines.next().unwrap_or(""));
        }
        members.push(response);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quiet_world_passes_and_loses_nothing() {
        let config = SimConfig {
            faults: FaultPlan::none(),
            ..SimConfig::for_seed(0)
        };
        let report = run(&config);
        report.assert_ok();
        assert_eq!(report.crashes, 1, "only the final mandatory crash");
        assert_eq!(report.acked, report.ops, "no faults: every op acked");
        assert!(report.wal_records > 0);
        assert!(report.score_checks > 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(&SimConfig::for_seed(5));
        let b = run(&SimConfig::for_seed(5));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = run(&SimConfig::for_seed(6));
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "seed must matter");
    }

    #[test]
    fn faulty_worlds_actually_inject_faults() {
        let report = run(&SimConfig::for_seed(1));
        report.assert_ok();
        assert!(report.faults_injected > 0, "{report:?}");
        assert!(report.crashes >= 1);
        // Drops cost executions (request lost) or acks (response lost);
        // duplicates add executions — under faults the two never line
        // up with the scripted op count on both sides at once.
        let config = SimConfig::for_seed(1);
        assert!(
            report.ops != config.n_ops || report.acked != config.n_ops,
            "no transport fault had any effect: {report:?}"
        );
    }

    #[test]
    fn checkpoint_format_is_a_pure_function_of_the_seed() {
        // The repro command only carries the seed, so everything the
        // world depends on — format included — must re-derive from it.
        assert_eq!(
            SimConfig::for_seed(0).checkpoint_format,
            CheckpointFormat::Binary
        );
        assert_eq!(
            SimConfig::for_seed(2).checkpoint_format,
            CheckpointFormat::Text
        );
        // Seeds 0..4 cover every (sync policy, format) pair.
        let formats: Vec<CheckpointFormat> = (0..4)
            .map(|s| SimConfig::for_seed(s).checkpoint_format)
            .collect();
        assert!(formats.contains(&CheckpointFormat::Text));
        assert!(formats.contains(&CheckpointFormat::Binary));
        for s in 0..4 {
            assert_eq!(
                SimConfig::for_seed(s).checkpoint_format,
                SimConfig::for_seed(s).checkpoint_format
            );
        }
    }

    #[test]
    fn both_checkpoint_formats_survive_the_sim() {
        for seed in [0, 2] {
            let config = SimConfig::for_seed(seed);
            let report = run(&config);
            report.assert_ok();
        }
    }

    #[test]
    fn batched_frames_are_scripted_and_survive_quiet_worlds() {
        let config = SimConfig {
            faults: FaultPlan::none(),
            ..SimConfig::for_seed(3)
        };
        let report = run(&config);
        report.assert_ok();
        assert_eq!(report.acked, report.ops, "no faults: every op acked");
        assert_eq!(report.mid_commit_crashes, 0);
    }

    #[test]
    fn mid_commit_crashes_keep_the_durability_floor() {
        // Only the group-commit fault class: every crash the sweep sees
        // here is the window where a whole batch is in the file but none
        // of it is durable or acked. The floor invariants must hold
        // through each one.
        let mut observed = 0u64;
        for seed in 0..12 {
            let config = SimConfig {
                faults: FaultPlan {
                    seed,
                    crash_commit_per_mille: 700,
                    ..FaultPlan::none()
                },
                ..SimConfig::for_seed(seed)
            };
            let report = run(&config);
            report.assert_ok();
            observed += report.mid_commit_crashes;
        }
        assert!(observed > 0, "no mid-group-commit crash was ever injected");
    }

    #[test]
    fn split_member_responses_handles_multi_line_members() {
        let body = "OKBATCH 3\nPONG\nOK 2\nCLOSED a\nCLOSED b\nERR nope";
        assert_eq!(
            split_member_responses(body, 3),
            vec![
                "PONG".to_owned(),
                "OK 2\nCLOSED a\nCLOSED b".to_owned(),
                "ERR nope".to_owned()
            ]
        );
    }

    #[test]
    fn repro_command_names_the_public_test() {
        assert_eq!(
            repro_command(42),
            "ATTRITION_SIM_SEED=42 cargo test -p attrition-sim --test sim repro_seed -- --nocapture"
        );
    }
}
