//! # attrition-sim
//!
//! A deterministic simulation harness for the serving + durability
//! stack, in the FoundationDB style: the **real** production code —
//! [`Engine`](attrition_serve::Engine), the WAL, checkpoints, recovery
//! — runs single-threaded against a seeded logical clock
//! ([`SimClock`]), an in-memory crash-faithful filesystem
//! ([`SimStorage`]), and a seed-driven fault schedule
//! ([`FaultPlan`](attrition_serve::FaultPlan)): message drops,
//! duplicates, delay-reorders, injected and torn disk writes, and
//! crash-restarts at arbitrary event boundaries.
//!
//! One `u64` seed fixes the entire interleaving, so any failure the
//! sweep finds replays exactly:
//!
//! ```text
//! ATTRITION_SIM_SEED=<seed> cargo test -p attrition-sim --test sim repro_seed -- --nocapture
//! ```
//!
//! After every recovery the harness asserts (DESIGN §11): recovery
//! reaches the WAL's durability floor (under `sync=always`, every
//! acknowledged mutation survives), and the recovered state is
//! bit-identical to a reference monitor folded over exactly the
//! surviving WAL prefix — so no un-acknowledged, never-logged record is
//! ever visible. Between crashes every `SCORE` response is compared
//! bit-for-bit against the reference.
//!
//! [`SimBug`] re-introduces known bugs (e.g. skipping torn-tail
//! truncation) to prove the harness fails loudly, with a printed seed,
//! when the stack is actually broken.

pub mod env;
pub mod harness;
pub mod net;
pub mod repl;

pub use env::{SimClock, SimStorage, StorageStats};
pub use harness::{repro_command, run, SimBug, SimConfig, SimReport};
pub use net::{Flight, NetStats, SimNet};
pub use repl::{
    repro_rejoin_command, repro_repl_command, run_repl, ReplReport, ReplSimBug, ReplSimConfig,
};
