//! A deterministic lossy network link for the replication simulator.
//!
//! [`SimNet`] models one direction of a connection (requests go over
//! one instance, responses over another) as a queue of in-flight
//! messages with seeded faults drawn from the same [`FaultPlan`] rates
//! the single-node simulator uses: drops, duplicates, and delays (which
//! reorder messages relative to later sends). On top of those it adds
//! **partitions**: seeded windows of a few rounds during which the link
//! is severed — everything sent *or* due for delivery is lost, exactly
//! as a broken TCP connection loses whatever was buffered.
//!
//! Time is round-based, driven by the simulator's event loop calling
//! [`tick`](SimNet::tick) once per round: a message sent in round `r`
//! is deliverable in round `r + 1` (or later, when delayed), so there
//! is always at least one round of flight time — which is what leaves
//! shipments in flight when a primary dies, the exact window epoch
//! fencing exists for.

use attrition_serve::{FaultPlan, SplitMix64};
use std::collections::VecDeque;

/// One in-flight message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flight {
    /// The wire payload (a request line or a multi-line response).
    pub payload: String,
    /// Side-channel metadata the simulator tracks per message (the
    /// replication harness carries the sender's durable LSN here).
    pub meta: u64,
    /// Round at which the message becomes deliverable.
    due: u64,
}

/// Fault and traffic counters for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`SimNet::send`].
    pub sent: u64,
    /// Messages delivered to the receiving side.
    pub delivered: u64,
    /// Messages dropped by the seeded drop fault.
    pub dropped: u64,
    /// Extra copies enqueued by the seeded duplication fault.
    pub duplicated: u64,
    /// Messages given extra flight time (reordering them past later
    /// sends).
    pub delayed: u64,
    /// Partition windows opened.
    pub partitions: u64,
    /// Messages lost to a partition (sent into it, or due during it).
    pub partition_drops: u64,
}

impl NetStats {
    /// Every fault this link injected.
    pub fn faults(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.partition_drops
    }
}

/// One direction of a seeded lossy link. See the module docs.
#[derive(Debug)]
pub struct SimNet {
    rng: SplitMix64,
    plan: FaultPlan,
    partition_per_mille: u32,
    queue: VecDeque<Flight>,
    round: u64,
    partition_left: u64,
    stats: NetStats,
}

impl SimNet {
    /// A link drawing drop/dup/delay rates from `plan` and partition
    /// windows at `partition_per_mille` per round, all from `seed`.
    pub fn new(seed: u64, plan: FaultPlan, partition_per_mille: u32) -> SimNet {
        SimNet {
            rng: SplitMix64::new(seed),
            plan,
            partition_per_mille,
            queue: VecDeque::new(),
            round: 0,
            partition_left: 0,
            stats: NetStats::default(),
        }
    }

    /// Advance one round: heal a partition by one round, or open a new
    /// seeded one.
    pub fn tick(&mut self) {
        self.round += 1;
        if self.partition_left > 0 {
            self.partition_left -= 1;
        } else if self.partition_per_mille != 0 && self.rng.per_mille(self.partition_per_mille) {
            self.partition_left = 1 + self.rng.below(5);
            self.stats.partitions += 1;
        }
    }

    /// Whether the link is currently severed.
    pub fn partitioned(&self) -> bool {
        self.partition_left > 0
    }

    /// Send a message; the seeded faults decide its fate.
    pub fn send(&mut self, payload: String, meta: u64) {
        self.stats.sent += 1;
        if self.partitioned() {
            self.stats.partition_drops += 1;
            return;
        }
        if self.plan.drop_message(&mut self.rng) {
            self.stats.dropped += 1;
            return;
        }
        let mut due = self.round + 1;
        if self.plan.delay_message(&mut self.rng) {
            self.stats.delayed += 1;
            due += 1 + self.rng.below(3);
        }
        let flight = Flight { payload, meta, due };
        if self.plan.duplicate_message(&mut self.rng) {
            self.stats.duplicated += 1;
            self.queue.push_back(flight.clone());
        }
        self.queue.push_back(flight);
    }

    /// Everything due this round, in send order (delayed messages
    /// surface later — that is the reorder). During a partition the due
    /// messages are lost instead, as a severed connection loses its
    /// buffers.
    pub fn deliver_due(&mut self) -> Vec<Flight> {
        let round = self.round;
        let mut due = Vec::new();
        self.queue.retain(|f| {
            if f.due <= round {
                due.push(f.clone());
                false
            } else {
                true
            }
        });
        if self.partitioned() {
            self.stats.partition_drops += due.len() as u64;
            return Vec::new();
        }
        self.stats.delivered += due.len() as u64;
        due
    }

    /// Surface *everything* still in flight, due or not (what the
    /// failover path uses: shipments from a dead primary can still land
    /// after its death — the window epoch fencing must cover).
    pub fn drain_all(&mut self) -> Vec<Flight> {
        let all: Vec<Flight> = self.queue.drain(..).collect();
        self.stats.delivered += all.len() as u64;
        all
    }

    /// Discard everything in flight without delivering (messages toward
    /// a node that no longer exists).
    pub fn clear(&mut self) {
        self.stats.dropped += self.queue.len() as u64;
        self.queue.clear();
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chatty(seed: u64) -> SimNet {
        SimNet::new(seed, FaultPlan::seeded(seed), 12)
    }

    #[test]
    fn a_faultless_link_delivers_in_order_one_round_later() {
        let mut net = SimNet::new(0, FaultPlan::none(), 0);
        net.tick();
        net.send("a".into(), 1);
        net.send("b".into(), 2);
        assert!(net.deliver_due().is_empty(), "not due until the next round");
        net.tick();
        let got = net.deliver_due();
        assert_eq!(
            got.iter().map(|f| f.payload.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert_eq!(got[0].meta, 1);
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn seeded_links_are_deterministic_and_actually_fault() {
        let run = |seed: u64| {
            let mut net = chatty(seed);
            let mut log = Vec::new();
            for i in 0..400u64 {
                net.tick();
                net.send(format!("m{i}"), i);
                for f in net.deliver_due() {
                    log.push(f.payload);
                }
            }
            (log, net.stats())
        };
        let (log_a, stats_a) = run(7);
        let (log_b, stats_b) = run(7);
        assert_eq!(log_a, log_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.faults() > 0, "{stats_a:?}");
        assert!(stats_a.partitions > 0, "{stats_a:?}");
        let (log_c, _) = run(8);
        assert_ne!(log_a, log_c, "the seed must matter");
    }

    #[test]
    fn partitions_lose_in_flight_messages() {
        let mut net = SimNet::new(3, FaultPlan::none(), 1000); // partition every round
        net.tick();
        assert!(net.partitioned());
        net.send("lost".into(), 0);
        assert_eq!(net.in_flight(), 0);
        assert!(net.stats().partition_drops >= 1);
    }
}
