//! The replication simulator: a real primary ([`PrimaryService`]) and a
//! real replica ([`ReplicaEngine`]) on separate crash-faithful disks,
//! sharing one logical clock, exchanging the *production wire bytes*
//! over a seeded lossy [`SimNet`] — drops, duplicates, delay-reorders,
//! partitions — while the primary's disk, the replica's disk, and both
//! processes crash on seeded schedules, and every run ends in a
//! mandatory failover.
//!
//! One [`ReplSimConfig::seed`] fixes the whole world; a failing seed
//! replays with:
//!
//! ```text
//! ATTRITION_REPL_SEED=<seed> cargo test -p attrition-sim --test repl repro_repl_seed -- --nocapture
//! ```
//!
//! ## The replication invariants (DESIGN §13)
//!
//! - **R1 — no acked-durable loss on failover.** The harness tracks the
//!   highest replica-durable LSN whose acknowledgement was actually
//!   *delivered* to the primary (the only LSNs anything external may
//!   rely on). A promotion must take over at or above it, and a
//!   recovered replica must never land below it.
//! - **R2 — byte-equal state at equal LSN.** After every applied
//!   shipment, every recovery, and at the promotion point, the
//!   replica's merged monitor snapshot must be byte-identical to a
//!   reference monitor folded over exactly the primary's logged ops up
//!   to the replica's applied LSN (text at every check; the binary
//!   framing too at promotion and at the final crash).
//!
//! Alongside those, the single-node invariants keep running on both
//! nodes (durability floor on every recovery, acked-survival under
//! `sync=always`, `SCORE` bit-identity against the reference), plus one
//! replication-specific safety check: a recovered primary must never be
//! *behind* its replica (the durable-floor shipping cap at work).
//!
//! - **R3 — a rejoined deposed primary carries no divergent record.**
//!   When [`ReplSimConfig::rejoin_phase`] is on, the old primary's disk
//!   is reopened as a replica after the failover and healed back in via
//!   the `REJOIN` handshake. From the moment it adopts the new epoch,
//!   its snapshot must be byte-equal to a reference folded over exactly
//!   the *new* timeline's log prefix at its applied LSN — any record
//!   from the divergent suffix surviving the rejoin breaks the
//!   equality. A rejoin world replays with:
//!
//! ```text
//! ATTRITION_REPL_SEED=<seed> cargo test -p attrition-sim --test rejoin repro_rejoin_seed -- --nocapture
//! ```
//!
//! [`ReplSimBug::AcceptStaleEpoch`] re-introduces the classic failover
//! bug — applying a dead primary's in-flight shipment after promotion —
//! and the sweep proves R2 catches it with a replayable seed.
//! [`ReplSimBug::KeepDivergentSuffix`] does the same for the rejoin
//! path: the deposed primary adopts the new epoch but keeps its
//! divergent records, and R3 must catch the ghost state.

use crate::env::{SimClock, SimStorage};
use crate::harness::{
    apply_accepted, apply_replayed, fresh_monitor, origin, spec, MAX_EXPLANATIONS, OPS_PER_MONTH,
};
use crate::net::SimNet;
use attrition_core::{StabilityMonitor, StabilityParams};
use attrition_replica::{
    FetchResponse, PrimaryService, RejoinRequest, RejoinResponse, ReplicaConfig, ReplicaEngine,
};
use attrition_serve::checkpoint::CheckpointFormat;
use attrition_serve::engine::{DurabilityConfig, Engine};
use attrition_serve::protocol::{format_score, Request};
use attrition_serve::recovery::{recover_in, Fallback};
use attrition_serve::shard::ShardedMonitor;
use attrition_serve::{FaultPlan, Service, SplitMix64, Storage, SyncPolicy};
use attrition_types::{CustomerId, Date, ItemId};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const PRIMARY_DIR: &str = "/sim/primary";
const REPLICA_DIR: &str = "/sim/replica";

/// A deliberately re-introduced replication bug, for proving the sweep
/// fails loudly when the protocol is actually broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplSimBug {
    /// Skip the epoch fence on the replica: a dead primary's in-flight
    /// shipment, surfacing after promotion, gets *applied* — records
    /// the new timeline disowned sneak into the promoted state, and the
    /// R2 byte-equality check must catch the divergence.
    AcceptStaleEpoch,
    /// Skip the divergent-suffix discard on rejoin: the deposed primary
    /// adopts the new epoch but keeps every record it wrote past the
    /// promotion LSN — ghost state the new timeline disowned — and the
    /// R3 byte-equality check must catch it.
    KeepDivergentSuffix,
}

/// One simulated replicated world. Construct via
/// [`ReplSimConfig::for_seed`] or [`ReplSimConfig::with_bug`].
#[derive(Debug, Clone)]
pub struct ReplSimConfig {
    /// Master seed: fixes workload, transport faults, partitions, disk
    /// faults, crash points, and the failover point.
    pub seed: u64,
    /// Client operations scripted against the active node.
    pub n_ops: u64,
    /// Customers the workload spreads over.
    pub n_customers: u64,
    /// Monitor shards on both nodes.
    pub n_shards: usize,
    /// The primary's WAL sync policy.
    pub primary_sync: SyncPolicy,
    /// The replica's WAL sync policy (its durable floor is what acks —
    /// and therefore R1 — are made of).
    pub replica_sync: SyncPolicy,
    /// Fault schedule: disk faults inside both WALs, message faults on
    /// both link directions, crash points in the driver.
    pub faults: FaultPlan,
    /// Checkpoint count trigger on both nodes (primary checkpoints
    /// truncate its WAL, forcing the replica's snapshot-bootstrap path
    /// whenever it lags past one).
    pub checkpoint_every_requests: u64,
    /// Checkpoint framing both nodes write and ship.
    pub checkpoint_format: CheckpointFormat,
    /// Per-round rate of partition windows on each link direction.
    pub partition_per_mille: u32,
    /// Records the replica requests per fetch.
    pub batch_max: u64,
    /// After the failover and coda, reopen the deposed primary's disk
    /// as a replica and heal it back in via the `REJOIN` handshake,
    /// checking invariant R3 under the same transport and crash faults.
    pub rejoin_phase: bool,
    /// Client operations scripted against the promoted node while the
    /// deposed primary rejoins and catches up.
    pub rejoin_ops: u64,
    /// Re-introduced bug, if self-testing the harness.
    pub bug: Option<ReplSimBug>,
}

impl ReplSimConfig {
    /// The sweep configuration for one seed: every fault class on, sync
    /// policies and checkpoint format alternating across seed bits so
    /// the sweep covers each combination, and a small batch size on
    /// some seeds to force multi-round catch-ups.
    pub fn for_seed(seed: u64) -> ReplSimConfig {
        ReplSimConfig {
            seed,
            n_ops: 280,
            n_customers: 12,
            n_shards: 4,
            primary_sync: if seed.is_multiple_of(2) {
                SyncPolicy::Always
            } else {
                SyncPolicy::Interval(3)
            },
            replica_sync: if (seed >> 2).is_multiple_of(2) {
                SyncPolicy::Always
            } else {
                SyncPolicy::Interval(2)
            },
            faults: FaultPlan::seeded(seed),
            checkpoint_every_requests: 24,
            checkpoint_format: if (seed >> 1).is_multiple_of(2) {
                CheckpointFormat::Binary
            } else {
                CheckpointFormat::Text
            },
            partition_per_mille: 12,
            batch_max: if (seed >> 3).is_multiple_of(2) { 64 } else { 5 },
            rejoin_phase: false,
            rejoin_ops: 0,
            bug: None,
        }
    }

    /// [`for_seed`](ReplSimConfig::for_seed) with the rejoin phase on:
    /// the world ends with the deposed primary healed back in as a
    /// replica of the new generation, under invariant R3.
    pub fn for_rejoin_seed(seed: u64) -> ReplSimConfig {
        ReplSimConfig {
            rejoin_phase: true,
            rejoin_ops: 90,
            ..ReplSimConfig::for_seed(seed)
        }
    }

    /// The base world for a bug with extra delivery delay, so
    /// dead-primary shipments are reliably in flight at the failover
    /// and the deposed node reliably holds a divergent suffix.
    pub fn with_bug(seed: u64, bug: ReplSimBug) -> ReplSimConfig {
        let base = match bug {
            ReplSimBug::AcceptStaleEpoch => ReplSimConfig::for_seed(seed),
            ReplSimBug::KeepDivergentSuffix => ReplSimConfig::for_rejoin_seed(seed),
        };
        ReplSimConfig {
            faults: FaultPlan {
                delay_per_mille: 250,
                ..FaultPlan::seeded(seed)
            },
            bug: Some(bug),
            ..base
        }
    }
}

/// What one replicated run did and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplReport {
    /// The seed that reproduces everything below.
    pub seed: u64,
    /// Client requests executed against the active node.
    pub ops: u64,
    /// Mutations the active node's WAL logged.
    pub wal_records: u64,
    /// Shipments the replica applied (batches and snapshots).
    pub batches_applied: u64,
    /// Records newly applied on the replica.
    pub records_replicated: u64,
    /// Shipped records skipped as duplicates/reorders.
    pub records_skipped: u64,
    /// Snapshot bootstraps installed (the replica lagged past a primary
    /// checkpoint truncation).
    pub snapshots_installed: u64,
    /// Stale-epoch shipments the fence rejected.
    pub fenced: u64,
    /// Liveness-only replication errors retried (`ERR` answers, batch
    /// gaps after a replica crash, mid-crash misalignments).
    pub repl_errors: u64,
    /// Primary crash-recoveries.
    pub primary_crashes: u64,
    /// Replica crash-recoveries (including post-promotion ones).
    pub replica_crashes: u64,
    /// Failovers executed (exactly 1 in a passing run).
    pub failovers: u64,
    /// Epoch after the last promotion.
    pub promoted_epoch: u64,
    /// The LSN the promotion took over at.
    pub promotion_lsn: u64,
    /// Partition windows opened across both link directions.
    pub partitions: u64,
    /// Transport faults injected across both link directions.
    pub transport_faults: u64,
    /// `SCORE` responses compared bit-for-bit against a reference.
    pub score_checks: u64,
    /// Whether the world ran the deposed-primary rejoin phase (decides
    /// which repro command a failure prints).
    pub rejoin_phase: bool,
    /// Successful `REJOIN` adoptions by the deposed primary (re-runs
    /// after its crashes or after re-promotions included).
    pub rejoins: u64,
    /// Divergent-suffix records the rejoin discard rule destroyed.
    pub divergent_records_discarded: u64,
    /// New-timeline records the rejoined node applied after healing.
    pub rejoin_records_applied: u64,
    /// Crash-recoveries of the rejoined node during the rejoin phase.
    pub rejoined_crashes: u64,
    /// Individual invariant assertions evaluated.
    pub invariant_checks: u64,
    /// Invariant violations (empty = the run passed); the run stops at
    /// the first one.
    pub violations: Vec<String>,
}

impl ReplReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the violation, the seed, and the one-command repro if
    /// the run failed.
    pub fn assert_ok(&self) {
        if let Some(first) = self.violations.first() {
            let repro = if self.rejoin_phase {
                repro_rejoin_command(self.seed)
            } else {
                repro_repl_command(self.seed)
            };
            panic!(
                "replication sim seed {} violated an invariant: {first}\n  reproduce with: {repro}",
                self.seed,
            );
        }
    }
}

/// The exact command that replays a failing replication seed.
pub fn repro_repl_command(seed: u64) -> String {
    format!(
        "ATTRITION_REPL_SEED={seed} cargo test -p attrition-sim --test repl repro_repl_seed -- --nocapture"
    )
}

/// The exact command that replays a failing rejoin-phase seed.
pub fn repro_rejoin_command(seed: u64) -> String {
    format!(
        "ATTRITION_REPL_SEED={seed} cargo test -p attrition-sim --test rejoin repro_rejoin_seed -- --nocapture"
    )
}

fn fallback() -> Fallback {
    Fallback {
        spec: spec(),
        params: StabilityParams::PAPER,
        max_explanations: MAX_EXPLANATIONS,
    }
}

/// A mutation the active node logged, by WAL sequence number.
#[derive(Debug)]
struct OpEntry {
    seq: u64,
    line: String,
    /// The response was `OK …`, i.e. the op mutated live state.
    applied: bool,
}

struct ReplSim {
    config: ReplSimConfig,
    clock: Arc<SimClock>,
    storage_p: Arc<SimStorage>,
    storage_r: Arc<SimStorage>,
    pcfg: DurabilityConfig,
    rcfg: ReplicaConfig,
    /// The deposed primary's configuration as a *replica* over its own
    /// (old-primary) directory, for the rejoin phase.
    rjcfg: ReplicaConfig,
    primary: Option<PrimaryService>,
    replica: ReplicaEngine,
    /// The deposed primary reopened as a replica (rejoin phase only).
    /// `Arc` so a round can hold the node while the harness mutates its
    /// own counters.
    rejoined: Option<Arc<ReplicaEngine>>,
    net_req: SimNet,
    net_resp: SimNet,
    /// The rejoiner's own lossy link directions toward the new primary.
    net_req2: SimNet,
    net_resp2: SimNet,
    /// Mutations logged on the current write timeline, ascending seq.
    oplog: Vec<OpEntry>,
    /// Live reference for the *active* node's state.
    mirror: StabilityMonitor,
    /// Reference fold of the oplog up to `repl_mirror_seq` — what the
    /// replica must byte-equal at its applied LSN (invariant R2).
    repl_mirror: StabilityMonitor,
    repl_mirror_seq: u64,
    /// Reference fold for the *rejoined* node — what it must byte-equal
    /// at its applied LSN once it is current (invariant R3).
    rj_mirror: StabilityMonitor,
    rj_mirror_seq: u64,
    /// The rejoined node has durably adopted an epoch newer than the
    /// one it was deposed at — only then is its state a pure prefix of
    /// the new timeline and the R3 fold comparison meaningful.
    rj_current: bool,
    /// The rejoiner's next round must run the `REJOIN` handshake
    /// instead of an ordinary fetch.
    rj_handshake: bool,
    /// The epoch the dead primary was at when it lost the cluster.
    deposed_epoch: u64,
    /// Highest replica-durable LSN whose ack was delivered upstream —
    /// the R1 floor.
    repl_acked: u64,
    promoted: bool,
    transport_rng: SplitMix64,
    crash_rng: SplitMix64,
    ops: u64,
    wal_records: u64,
    batches_applied: u64,
    records_replicated: u64,
    records_skipped: u64,
    snapshots_installed: u64,
    fenced: u64,
    repl_errors: u64,
    primary_crashes: u64,
    replica_crashes: u64,
    failovers: u64,
    promoted_epoch: u64,
    promotion_lsn: u64,
    score_checks: u64,
    rejoins: u64,
    divergent_discarded: u64,
    rejoin_records: u64,
    rejoined_crashes: u64,
    invariant_checks: u64,
    violations: Vec<String>,
}

impl ReplSim {
    fn new(config: ReplSimConfig) -> ReplSim {
        let storage_p: Arc<SimStorage> = Arc::new(SimStorage::new());
        let storage_r: Arc<SimStorage> = Arc::new(SimStorage::new());
        let clock = Arc::new(SimClock::new());
        let pcfg = DurabilityConfig {
            wal_dir: PathBuf::from(PRIMARY_DIR),
            sync_policy: config.primary_sync,
            checkpoint_every_requests: config.checkpoint_every_requests,
            checkpoint_every: None,
            keep_checkpoints: 2,
            checkpoint_format: config.checkpoint_format,
            fault_plan: Some(config.faults.clone()),
        };
        let rcfg = ReplicaConfig {
            wal_dir: PathBuf::from(REPLICA_DIR),
            n_shards: config.n_shards,
            durability: DurabilityConfig {
                wal_dir: PathBuf::from(REPLICA_DIR),
                sync_policy: config.replica_sync,
                checkpoint_every_requests: 16,
                checkpoint_every: None,
                keep_checkpoints: 2,
                checkpoint_format: config.checkpoint_format,
                fault_plan: Some(FaultPlan {
                    seed: config.seed ^ 0x0E70_0000_0000_0016,
                    ..config.faults.clone()
                }),
            },
            fallback: fallback(),
            accept_stale_epoch: config.bug == Some(ReplSimBug::AcceptStaleEpoch),
            keep_divergent_suffix: false,
        };
        // The deposed primary's second life: a replica over the *old
        // primary's* directory, healing in via the rejoin handshake.
        let rjcfg = ReplicaConfig {
            wal_dir: PathBuf::from(PRIMARY_DIR),
            n_shards: config.n_shards,
            durability: DurabilityConfig {
                wal_dir: PathBuf::from(PRIMARY_DIR),
                sync_policy: config.replica_sync,
                checkpoint_every_requests: 16,
                checkpoint_every: None,
                keep_checkpoints: 2,
                checkpoint_format: config.checkpoint_format,
                fault_plan: Some(FaultPlan {
                    seed: config.seed ^ 0x0E70_0000_0000_0019,
                    ..config.faults.clone()
                }),
            },
            fallback: fallback(),
            accept_stale_epoch: false,
            keep_divergent_suffix: config.bug == Some(ReplSimBug::KeepDivergentSuffix),
        };
        let monitor = ShardedMonitor::new(
            config.n_shards,
            spec(),
            StabilityParams::PAPER,
            MAX_EXPLANATIONS,
        );
        let engine = Engine::open_in(
            monitor,
            None,
            Some(&pcfg),
            1,
            Arc::clone(&storage_p) as Arc<dyn Storage>,
            Arc::clone(&clock) as Arc<dyn attrition_serve::Clock>,
        )
        .expect("in-memory engine open cannot fail");
        let primary = PrimaryService::open_in(
            Arc::new(engine),
            Arc::clone(&storage_p) as Arc<dyn Storage>,
            Path::new(PRIMARY_DIR),
        )
        .expect("in-memory primary open cannot fail");
        let (replica, _stats) = ReplicaEngine::open_in(
            rcfg.clone(),
            Arc::clone(&storage_r) as Arc<dyn Storage>,
            Arc::clone(&clock) as Arc<dyn attrition_serve::Clock>,
        )
        .expect("in-memory replica open cannot fail");
        ReplSim {
            net_req: SimNet::new(
                config.seed ^ 0x0E70_0000_0000_0014,
                config.faults.clone(),
                config.partition_per_mille,
            ),
            net_resp: SimNet::new(
                config.seed ^ 0x0E70_0000_0000_0015,
                config.faults.clone(),
                config.partition_per_mille,
            ),
            net_req2: SimNet::new(
                config.seed ^ 0x0E70_0000_0000_001A,
                config.faults.clone(),
                config.partition_per_mille,
            ),
            net_resp2: SimNet::new(
                config.seed ^ 0x0E70_0000_0000_001B,
                config.faults.clone(),
                config.partition_per_mille,
            ),
            transport_rng: SplitMix64::new(config.seed ^ 0x7AA9_5EED_0000_0011),
            crash_rng: SplitMix64::new(config.seed ^ 0xC4A5_85EE_D000_0012),
            config,
            clock,
            storage_p,
            storage_r,
            pcfg,
            rcfg,
            rjcfg,
            primary: Some(primary),
            replica,
            rejoined: None,
            oplog: Vec::new(),
            mirror: fresh_monitor(),
            repl_mirror: fresh_monitor(),
            repl_mirror_seq: 0,
            rj_mirror: fresh_monitor(),
            rj_mirror_seq: 0,
            rj_current: false,
            rj_handshake: false,
            deposed_epoch: 0,
            repl_acked: 0,
            promoted: false,
            ops: 0,
            wal_records: 0,
            batches_applied: 0,
            records_replicated: 0,
            records_skipped: 0,
            snapshots_installed: 0,
            fenced: 0,
            repl_errors: 0,
            primary_crashes: 0,
            replica_crashes: 0,
            failovers: 0,
            promoted_epoch: 0,
            promotion_lsn: 0,
            score_checks: 0,
            rejoins: 0,
            divergent_discarded: 0,
            rejoin_records: 0,
            rejoined_crashes: 0,
            invariant_checks: 0,
            violations: Vec::new(),
        }
    }

    /// The scripted client workload — same mix as the single-node sim.
    fn script(&self) -> VecDeque<String> {
        let mut rng = SplitMix64::new(self.config.seed ^ 0x3077_0AD5_0000_0013);
        let mut lines = VecDeque::with_capacity(self.config.n_ops as usize);
        for i in 0..self.config.n_ops {
            let month = (i / OPS_PER_MONTH) as i32;
            lines.push_back(scripted_op(&mut rng, month, self.config.n_customers));
        }
        lines
    }

    /// A short deterministic coda of writes for the promoted node: every
    /// run must prove the new primary actually accepts and serves them.
    fn coda(&self) -> Vec<String> {
        let mut rng = SplitMix64::new(self.config.seed ^ 0x3077_0AD5_0000_0017);
        let month = (self.config.n_ops / OPS_PER_MONTH) as i32 + 1;
        (0..12)
            .map(|_| scripted_op(&mut rng, month, self.config.n_customers))
            .collect()
    }

    fn violation(&mut self, message: String) {
        self.violations.push(message);
    }

    fn active_last_seq(&self) -> u64 {
        if self.promoted {
            self.replica.applied_seq()
        } else {
            match &self.primary {
                Some(p) => p.engine().wal_last_seq(),
                None => 0,
            }
        }
    }

    /// Execute one client request against the active node and account
    /// for it (op log, live mirror, `SCORE` bit-identity).
    fn deliver(&mut self, line: &str) {
        let before = self.active_last_seq();
        let (_verb, response) = if self.promoted {
            self.replica.respond(line)
        } else {
            match &self.primary {
                Some(p) => p.respond(line),
                None => return,
            }
        };
        let after = self.active_last_seq();
        self.ops += 1;
        match Request::parse(line) {
            Ok(Request::Ingest(..)) | Ok(Request::Flush(_)) => {
                let applied = response.starts_with("OK");
                if after > before {
                    self.wal_records += after - before;
                    self.oplog.push(OpEntry {
                        seq: after,
                        line: line.to_owned(),
                        applied,
                    });
                } else if applied {
                    self.violation(format!(
                        "mutation applied without a wal record: {line:?} -> {response:?}"
                    ));
                }
                if applied {
                    apply_accepted(&mut self.mirror, line);
                }
            }
            Ok(Request::Score(customer)) => {
                self.score_checks += 1;
                self.invariant_checks += 1;
                let expected = match self.mirror.preview(customer) {
                    Some(point) => format_score(customer, &point),
                    None => format!("ERR unknown customer {}", customer.raw()),
                };
                if response != expected {
                    self.violation(format!(
                        "active-node SCORE diverged from the reference: got {response:?}, \
                         expected {expected:?}"
                    ));
                }
            }
            _ => {}
        }
    }

    /// Fold the oplog prefix `seq <= floor` into a fresh monitor.
    fn fold_reference(&self, floor: u64) -> StabilityMonitor {
        let mut monitor = fresh_monitor();
        for entry in &self.oplog {
            if entry.seq <= floor {
                apply_replayed(&mut monitor, &entry.line);
            }
        }
        monitor
    }

    /// One replication round: the replica fetches, the link misbehaves,
    /// the primary answers from its durable log, the replica applies
    /// whatever lands.
    fn repl_round(&mut self) {
        self.net_req.tick();
        self.net_resp.tick();
        let req = self.replica.fetch_request(self.config.batch_max);
        self.net_req.send(req.to_line(), self.replica.durable_seq());
        for flight in self.net_req.deliver_due() {
            // The request's arrival is the ack: the primary now knows
            // the replica holds `meta` durably. Only *delivered* acks
            // count toward the R1 floor.
            self.repl_acked = self.repl_acked.max(flight.meta);
            let Some(primary) = self.primary.as_ref() else {
                break;
            };
            let (_verb, response) = primary.respond(&flight.payload);
            self.net_resp.send(response, 0);
        }
        for flight in self.net_resp.deliver_due() {
            self.apply_wire(&flight.payload);
            if !self.violations.is_empty() {
                break;
            }
        }
    }

    /// Hand one wire response to the replica — exactly the bytes a TCP
    /// fetch would have read.
    fn apply_wire(&mut self, text: &str) {
        if text.starts_with("ERR") {
            self.repl_errors += 1;
            return;
        }
        let resp = match FetchResponse::parse(text) {
            Ok(resp) => resp,
            Err(e) => {
                self.violation(format!("unparseable shipment: {e} (payload {text:?})"));
                return;
            }
        };
        match self.replica.apply_response(&resp) {
            Ok(applied) => {
                self.batches_applied += 1;
                self.records_replicated += applied.fresh;
                self.records_skipped += applied.skipped;
                if applied.snapshot_installed {
                    self.snapshots_installed += 1;
                }
                if applied.fresh > 0 || applied.snapshot_installed {
                    self.check_replica_state("after an applied shipment");
                }
            }
            Err(e) if e.contains("fenced") => self.fenced += 1,
            // Batch gaps (a delayed response landing after a replica
            // crash regressed its LSN) and mid-crash apply errors are
            // liveness events: the replica re-fetches from its real
            // state. Safety stays with R1/R2.
            Err(_) => self.repl_errors += 1,
        }
    }

    /// Invariant R2 at the replica's current applied LSN, plus a
    /// replica-side `SCORE` bit-identity probe.
    fn check_replica_state(&mut self, context: &str) {
        let applied = self.replica.applied_seq();
        if applied < self.repl_mirror_seq {
            // The replica regressed (crash recovery): re-fold.
            self.repl_mirror = fresh_monitor();
            self.repl_mirror_seq = 0;
        }
        for entry in &self.oplog {
            if entry.seq > self.repl_mirror_seq && entry.seq <= applied {
                apply_replayed(&mut self.repl_mirror, &entry.line);
            }
        }
        self.repl_mirror_seq = applied;
        self.invariant_checks += 1;
        let engine = self.replica.engine();
        if engine.monitor().snapshot() != self.repl_mirror.snapshot() {
            self.violation(format!(
                "R2 violated {context}: replica state at LSN {applied} is not byte-equal \
                 to the primary's log prefix"
            ));
            return;
        }
        // A replica answers reads: its SCOREs must be bit-identical to
        // the reference at its LSN.
        self.score_checks += 1;
        self.invariant_checks += 1;
        let customer = CustomerId::new(1 + self.transport_rng.below(self.config.n_customers));
        let (_verb, response) = self.replica.respond(&Request::Score(customer).to_line());
        let expected = match self.repl_mirror.preview(customer) {
            Some(point) => format_score(customer, &point),
            None => format!("ERR unknown customer {}", customer.raw()),
        };
        if response != expected {
            self.violation(format!(
                "replica SCORE diverged at LSN {applied}: got {response:?}, expected {expected:?}"
            ));
        }
    }

    /// Crash the primary's disk and process, recover it, and check the
    /// single-node invariants plus the never-behind-the-replica cap.
    fn restart_primary(&mut self) {
        let Some(service) = self.primary.take() else {
            return;
        };
        self.primary_crashes += 1;
        let synced_floor = service.engine().wal_synced_seq();
        drop(service);
        self.storage_p.crash(&mut self.crash_rng);
        let (monitor, stats) =
            match recover_in(&*self.storage_p, Path::new(PRIMARY_DIR), Some(&fallback())) {
                Ok(recovered) => recovered,
                Err(e) => {
                    self.violation(format!("primary recovery failed: {e}"));
                    return;
                }
            };
        let floor = stats.next_seq - 1;
        self.invariant_checks += 1;
        if floor < synced_floor {
            self.violation(format!(
                "primary recovery lost durable records: reached seq {floor}, \
                 but seq {synced_floor} was fsynced"
            ));
            return;
        }
        if self.config.primary_sync == SyncPolicy::Always {
            self.invariant_checks += 1;
            if let Some(lost) = self.oplog.iter().find(|e| e.applied && e.seq > floor) {
                self.violation(format!(
                    "acked mutation lost under sync=always: seq {} {:?}",
                    lost.seq, lost.line
                ));
                return;
            }
        }
        // The durable-floor shipping cap: nothing the replica holds may
        // exceed what the primary recovered to — otherwise the two have
        // diverged histories.
        self.invariant_checks += 1;
        if self.replica.applied_seq() > floor {
            self.violation(format!(
                "replica is ahead of the recovered primary: applied {} > recovered {floor} \
                 (an unsynced record was shipped)",
                self.replica.applied_seq()
            ));
            return;
        }
        self.oplog.retain(|e| e.seq <= floor);
        self.invariant_checks += 1;
        let reference = self.fold_reference(floor);
        if reference.snapshot() != monitor.snapshot() {
            self.violation(format!(
                "recovered primary diverges from its acknowledged prefix at seq {floor}"
            ));
            return;
        }
        self.mirror = reference;
        let sharded = ShardedMonitor::from_monitor(monitor, self.config.n_shards);
        let engine = match Engine::open_in(
            sharded,
            None,
            Some(&self.pcfg),
            stats.next_seq,
            Arc::clone(&self.storage_p) as Arc<dyn Storage>,
            Arc::clone(&self.clock) as Arc<dyn attrition_serve::Clock>,
        ) {
            Ok(engine) => engine,
            Err(e) => {
                self.violation(format!("primary reopen failed: {e}"));
                return;
            }
        };
        match PrimaryService::open_in(
            Arc::new(engine),
            Arc::clone(&self.storage_p) as Arc<dyn Storage>,
            Path::new(PRIMARY_DIR),
        ) {
            Ok(primary) => self.primary = Some(primary),
            Err(e) => self.violation(format!("primary service reopen failed: {e}")),
        }
    }

    /// Crash and recover the replica (pre-promotion): its recovered LSN
    /// must hold its own durability floor *and* the R1 ack floor.
    fn restart_replica(&mut self) {
        self.replica_crashes += 1;
        let synced_floor = self.replica.durable_seq();
        self.storage_r.crash(&mut self.crash_rng);
        let (replica, stats) = match ReplicaEngine::open_in(
            self.rcfg.clone(),
            Arc::clone(&self.storage_r) as Arc<dyn Storage>,
            Arc::clone(&self.clock) as Arc<dyn attrition_serve::Clock>,
        ) {
            Ok(opened) => opened,
            Err(e) => {
                self.violation(format!("replica recovery failed: {e}"));
                return;
            }
        };
        self.replica = replica;
        let floor = stats.next_seq - 1;
        self.invariant_checks += 1;
        if floor < synced_floor {
            self.violation(format!(
                "replica recovery lost durable records: reached seq {floor}, \
                 but seq {synced_floor} was fsynced"
            ));
            return;
        }
        self.invariant_checks += 1;
        if floor < self.repl_acked {
            self.violation(format!(
                "R1 violated on replica recovery: recovered to {floor}, but LSN {} \
                 was acked durable upstream",
                self.repl_acked
            ));
            return;
        }
        self.check_replica_state("after replica recovery");
    }

    /// Crash and recover the *promoted* node, then re-promote it (a
    /// restarted primary-by-takeover bumps the epoch again).
    fn restart_active(&mut self) {
        self.replica_crashes += 1;
        let synced_floor = self.replica.durable_seq();
        self.storage_r.crash(&mut self.crash_rng);
        let (replica, stats) = match ReplicaEngine::open_in(
            self.rcfg.clone(),
            Arc::clone(&self.storage_r) as Arc<dyn Storage>,
            Arc::clone(&self.clock) as Arc<dyn attrition_serve::Clock>,
        ) {
            Ok(opened) => opened,
            Err(e) => {
                self.violation(format!("promoted-node recovery failed: {e}"));
                return;
            }
        };
        self.replica = replica;
        let floor = stats.next_seq - 1;
        self.invariant_checks += 1;
        if floor < synced_floor {
            self.violation(format!(
                "promoted-node recovery lost durable records: reached seq {floor}, \
                 but seq {synced_floor} was fsynced"
            ));
            return;
        }
        if self.config.replica_sync == SyncPolicy::Always {
            self.invariant_checks += 1;
            if let Some(lost) = self.oplog.iter().find(|e| e.applied && e.seq > floor) {
                self.violation(format!(
                    "acked mutation lost on the promoted node under sync=always: seq {} {:?}",
                    lost.seq, lost.line
                ));
                return;
            }
        }
        self.oplog.retain(|e| e.seq <= floor);
        self.invariant_checks += 1;
        let reference = self.fold_reference(floor);
        if reference.snapshot() != self.replica.engine().monitor().snapshot() {
            self.violation(format!(
                "recovered promoted node diverges from its acknowledged prefix at seq {floor}"
            ));
            return;
        }
        self.mirror = reference;
        self.repl_mirror = self.fold_reference(floor);
        self.repl_mirror_seq = floor;
        match self.replica.promote() {
            Ok((epoch, lsn)) => {
                self.promoted_epoch = epoch;
                self.invariant_checks += 1;
                if lsn != floor {
                    self.violation(format!(
                        "re-promotion LSN {lsn} does not match the recovered floor {floor}"
                    ));
                }
            }
            Err(e) => self.violation(format!("re-promotion failed: {e}")),
        }
    }

    /// The failover: the primary dies, the replica is promoted at its
    /// durable LSN (R1), the new timeline disowns everything above it,
    /// and the dead primary's in-flight shipments surface against the
    /// fence.
    fn failover(&mut self) {
        self.failovers += 1;
        if self.primary.take().is_some() {
            self.storage_p.crash(&mut self.crash_rng);
        }
        let (_verb, response) = self.replica.respond("PROMOTE");
        let mut parts = response.split_ascii_whitespace();
        let (epoch, lsn) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some("OK"), Some("promoted"), Some(e), Some(l)) => {
                match (e.parse::<u64>(), l.parse::<u64>()) {
                    (Ok(e), Ok(l)) => (e, l),
                    _ => {
                        self.violation(format!("unparseable PROMOTE response: {response:?}"));
                        return;
                    }
                }
            }
            _ => {
                self.violation(format!("PROMOTE failed: {response:?}"));
                return;
            }
        };
        self.promoted_epoch = epoch;
        self.promotion_lsn = lsn;
        // The generation the dead primary lived in: a promotion bumps
        // its epoch by one, so this is what its disk still says. The
        // rejoin phase is "current" only once it has adopted past it.
        self.deposed_epoch = epoch - 1;
        // Invariant R1: the takeover point covers every LSN whose
        // durability was acknowledged to the old primary.
        self.invariant_checks += 1;
        if lsn < self.repl_acked {
            self.violation(format!(
                "R1 violated: promoted at LSN {lsn}, below the acked-durable LSN {}",
                self.repl_acked
            ));
            return;
        }
        // The new timeline: records above the takeover LSN died with
        // the old primary.
        self.oplog.retain(|e| e.seq <= lsn);
        self.mirror = self.fold_reference(lsn);
        self.repl_mirror = self.fold_reference(lsn);
        self.repl_mirror_seq = lsn;
        // Invariant R2 at the promotion point, text and binary framing.
        let engine = self.replica.engine();
        self.invariant_checks += 1;
        if engine.monitor().snapshot() != self.mirror.snapshot() {
            self.violation(format!(
                "R2 violated at promotion: state at LSN {lsn} is not byte-equal to the \
                 surviving log prefix"
            ));
            return;
        }
        self.invariant_checks += 1;
        if engine.monitor().snapshot_bytes() != self.mirror.snapshot_bytes() {
            self.violation(format!(
                "R2 (binary) violated at promotion: snapshot bytes differ at LSN {lsn}"
            ));
            return;
        }
        self.promoted = true;
        // Requests toward the dead primary evaporate; its already-sent
        // responses can still land — *after* the epoch bump, so the
        // fence must reject every one of them.
        self.net_req.clear();
        for flight in self.net_resp.drain_all() {
            self.apply_wire(&flight.payload);
            if !self.violations.is_empty() {
                break;
            }
        }
    }

    /// Reopen the deposed primary's crashed disk as a replica. Its WAL
    /// still holds everything it wrote — including the suffix the new
    /// timeline disowned — and its epoch file still says the old
    /// generation: the handshake has to find and fix both.
    fn start_rejoin(&mut self) {
        match ReplicaEngine::open_in(
            self.rjcfg.clone(),
            Arc::clone(&self.storage_p) as Arc<dyn Storage>,
            Arc::clone(&self.clock) as Arc<dyn attrition_serve::Clock>,
        ) {
            Ok((engine, _stats)) => {
                self.rejoined = Some(Arc::new(engine));
                self.rj_current = false;
                self.rj_handshake = true;
                self.rj_mirror = fresh_monitor();
                self.rj_mirror_seq = 0;
            }
            Err(e) => self.violation(format!("deposed-primary reopen as a replica failed: {e}")),
        }
    }

    /// One rejoiner round: handshake or fetch toward the new primary
    /// over its own lossy link directions, then apply whatever lands.
    fn rejoin_round(&mut self) {
        let Some(rj) = self.rejoined.as_ref().map(Arc::clone) else {
            return;
        };
        self.net_req2.tick();
        self.net_resp2.tick();
        let line = if self.rj_handshake {
            RejoinRequest {
                epoch: rj.epoch(),
                durable: rj.durable_seq(),
            }
            .to_line()
        } else {
            rj.fetch_request(self.config.batch_max).to_line()
        };
        self.net_req2.send(line, 0);
        for flight in self.net_req2.deliver_due() {
            let (_verb, response) = self.replica.respond(&flight.payload);
            self.net_resp2.send(response, 0);
        }
        for flight in self.net_resp2.deliver_due() {
            self.apply_rejoin_wire(&rj, &flight.payload);
            if !self.violations.is_empty() {
                break;
            }
        }
    }

    /// Hand one wire response to the rejoining node — `RJOIN` runs the
    /// discard rule, shipments apply, fences and rejoin-required errors
    /// re-arm the handshake (exactly what the production fetch loop
    /// does on those errors).
    fn apply_rejoin_wire(&mut self, rj: &Arc<ReplicaEngine>, text: &str) {
        if text.starts_with("ERR") {
            if text.contains("fenced") {
                self.fenced += 1;
                self.rj_handshake = true;
            } else {
                self.repl_errors += 1;
            }
            return;
        }
        // A handshake answer — possibly a delayed duplicate, which the
        // discard rule no-ops (epoch not newer than our own).
        if let Ok(resp) = RejoinResponse::parse(text) {
            match rj.rejoin_to(resp.epoch, resp.promotion_lsn) {
                Ok(outcome) => {
                    if outcome.adopted {
                        self.rejoins += 1;
                        if outcome.discarded {
                            self.divergent_discarded += outcome.divergent_records;
                        }
                        self.rj_current = rj.epoch() > self.deposed_epoch;
                        self.check_rejoined_state(rj, "after a rejoin adoption");
                    }
                    self.rj_handshake = false;
                }
                Err(e) => self.violation(format!("rejoin_to failed: {e}")),
            }
            return;
        }
        let resp = match FetchResponse::parse(text) {
            Ok(resp) => resp,
            Err(e) => {
                self.violation(format!(
                    "unparseable rejoin shipment: {e} (payload {text:?})"
                ));
                return;
            }
        };
        match rj.apply_response(&resp) {
            Ok(applied) => {
                self.batches_applied += 1;
                self.rejoin_records += applied.fresh;
                self.records_skipped += applied.skipped;
                if applied.snapshot_installed {
                    self.snapshots_installed += 1;
                }
                if applied.fresh > 0 || applied.snapshot_installed {
                    self.check_rejoined_state(rj, "after a rejoin shipment");
                }
            }
            Err(e) if e.contains("rejoin required") => {
                self.repl_errors += 1;
                self.rj_handshake = true;
            }
            Err(e) if e.contains("fenced") => self.fenced += 1,
            Err(_) => self.repl_errors += 1,
        }
    }

    /// Invariant R3 at the rejoined node's applied LSN: once current,
    /// its snapshot must byte-equal a reference folded over exactly the
    /// new timeline's log prefix — a surviving divergent record breaks
    /// this — plus a `SCORE` bit-identity probe.
    fn check_rejoined_state(&mut self, rj: &Arc<ReplicaEngine>, context: &str) {
        if !self.rj_current {
            // Still on the deposed timeline (or mid-discard after a
            // crash): its state legitimately contains divergent
            // records, so the fold comparison would be meaningless.
            return;
        }
        let applied = rj.applied_seq();
        if applied < self.rj_mirror_seq {
            self.rj_mirror = fresh_monitor();
            self.rj_mirror_seq = 0;
        }
        for entry in &self.oplog {
            if entry.seq > self.rj_mirror_seq && entry.seq <= applied {
                apply_replayed(&mut self.rj_mirror, &entry.line);
            }
        }
        self.rj_mirror_seq = applied;
        self.invariant_checks += 1;
        if rj.engine().monitor().snapshot() != self.rj_mirror.snapshot() {
            self.violation(format!(
                "R3 violated {context}: rejoined-node state at LSN {applied} is not \
                 byte-equal to the new primary's log prefix (a divergent record survived?)"
            ));
            return;
        }
        self.score_checks += 1;
        self.invariant_checks += 1;
        let customer = CustomerId::new(1 + self.transport_rng.below(self.config.n_customers));
        let (_verb, response) = rj.respond(&Request::Score(customer).to_line());
        let expected = match self.rj_mirror.preview(customer) {
            Some(point) => format_score(customer, &point),
            None => format!("ERR unknown customer {}", customer.raw()),
        };
        if response != expected {
            self.violation(format!(
                "rejoined-node SCORE diverged at LSN {applied}: got {response:?}, \
                 expected {expected:?}"
            ));
        }
    }

    /// Crash and recover the rejoining node. A crash can land after the
    /// discard but before the epoch adoption reached disk — recovery
    /// then resurfaces the *old* epoch and the handshake simply re-runs.
    fn restart_rejoined(&mut self) {
        let Some(rj) = self.rejoined.take() else {
            return;
        };
        self.rejoined_crashes += 1;
        let synced_floor = rj.durable_seq();
        drop(rj);
        self.storage_p.crash(&mut self.crash_rng);
        let (engine, stats) = match ReplicaEngine::open_in(
            self.rjcfg.clone(),
            Arc::clone(&self.storage_p) as Arc<dyn Storage>,
            Arc::clone(&self.clock) as Arc<dyn attrition_serve::Clock>,
        ) {
            Ok(opened) => opened,
            Err(e) => {
                self.violation(format!("rejoined-node recovery failed: {e}"));
                return;
            }
        };
        let engine = Arc::new(engine);
        let floor = stats.next_seq - 1;
        self.invariant_checks += 1;
        if floor < synced_floor {
            self.violation(format!(
                "rejoined-node recovery lost durable records: reached seq {floor}, \
                 but seq {synced_floor} was fsynced"
            ));
            self.rejoined = Some(engine);
            return;
        }
        // Whether the adopted epoch survived the crash decides whether
        // R3 applies and whether a handshake is needed again.
        self.rj_current = engine.epoch() > self.deposed_epoch;
        self.rj_handshake = !self.rj_current;
        self.rejoined = Some(Arc::clone(&engine));
        if self.rj_current {
            self.check_rejoined_state(&engine, "after rejoined-node recovery");
        }
    }

    /// The scripted rejoin phase: the promoted node keeps serving real
    /// traffic while the deposed primary heals in beside it, with both
    /// nodes still crashing and the link still lying.
    fn run_rejoin_phase(&mut self) {
        self.start_rejoin();
        let mut rng = SplitMix64::new(self.config.seed ^ 0x3077_0AD5_0000_0018);
        let month = (self.config.n_ops / OPS_PER_MONTH) as i32 + 1;
        for _ in 0..self.config.rejoin_ops {
            if !self.violations.is_empty() {
                return;
            }
            self.clock
                .advance(Duration::from_millis(1 + self.transport_rng.below(40)));
            let line = scripted_op(&mut rng, month, self.config.n_customers);
            self.deliver(&line);
            self.rejoin_round();
            if !self.violations.is_empty() {
                return;
            }
            if self.config.faults.crash_now(&mut self.crash_rng) {
                self.restart_rejoined();
            } else if self.crash_rng.per_mille(8) {
                self.restart_active();
            }
        }
        if self.violations.is_empty() {
            self.drain_rejoin();
        }
    }

    /// End of the rejoin phase: the network heals (direct respond/apply,
    /// no SimNet) and the rejoined node must fully converge — caught up
    /// to the new primary's durable floor and byte-equal to it at the
    /// same LSN, text and binary framing both.
    fn drain_rejoin(&mut self) {
        let Some(rj) = self.rejoined.as_ref().map(Arc::clone) else {
            self.violation("the rejoin phase ended without a rejoined node".to_owned());
            return;
        };
        if let Err(e) = self.replica.engine().sync_wal() {
            self.violation(format!("final sync on the promoted node failed: {e}"));
            return;
        }
        let target = self.replica.engine().wal_synced_seq();
        for _ in 0..200 {
            if self.rj_current && rj.applied_seq() >= target {
                break;
            }
            let line = if self.rj_handshake {
                RejoinRequest {
                    epoch: rj.epoch(),
                    durable: rj.durable_seq(),
                }
                .to_line()
            } else {
                rj.fetch_request(self.config.batch_max).to_line()
            };
            let (_verb, response) = self.replica.respond(&line);
            self.apply_rejoin_wire(&rj, &response);
            if !self.violations.is_empty() {
                return;
            }
        }
        self.invariant_checks += 1;
        if !self.rj_current || rj.applied_seq() < target {
            self.violation(format!(
                "the rejoined node failed to converge on a healed network: applied {} \
                 of {target}, current={}",
                rj.applied_seq(),
                self.rj_current
            ));
            return;
        }
        self.check_rejoined_state(&rj, "at the end of the rejoin phase");
        if !self.violations.is_empty() {
            return;
        }
        // R3 head-to-head: both nodes stand at the same LSN now, so
        // their snapshots must match byte for byte — no reference fold
        // in between — in both framings.
        self.invariant_checks += 1;
        if rj.engine().monitor().snapshot() != self.replica.engine().monitor().snapshot() {
            self.violation(format!(
                "R3 violated at drain: rejoined node and new primary differ at LSN {target}"
            ));
            return;
        }
        self.invariant_checks += 1;
        if rj.engine().monitor().snapshot_bytes()
            != self.replica.engine().monitor().snapshot_bytes()
        {
            self.violation(format!(
                "R3 (binary) violated at drain: snapshot bytes differ at LSN {target}"
            ));
        }
    }

    fn run(mut self) -> ReplReport {
        let mut pending = self.script();
        while let Some(line) = pending.pop_front() {
            if !self.violations.is_empty() {
                break;
            }
            self.clock
                .advance(Duration::from_millis(1 + self.transport_rng.below(40)));
            self.deliver(&line);
            if !self.promoted {
                self.repl_round();
            }
            if !self.violations.is_empty() {
                break;
            }
            if !self.promoted && self.config.faults.crash_now(&mut self.crash_rng) {
                self.restart_primary();
            } else if self.crash_rng.per_mille(8) {
                if self.promoted {
                    self.restart_active();
                } else {
                    self.restart_replica();
                }
            } else if !self.promoted && self.crash_rng.per_mille(6) {
                self.failover();
            }
        }
        // Every run ends in a failover: losing the primary forever is
        // the scenario the subsystem exists for.
        if self.violations.is_empty() && !self.promoted {
            self.failover();
        }
        // The promoted node must actually serve: a deterministic coda
        // of writes and reads against it.
        if self.violations.is_empty() {
            for line in self.coda() {
                self.deliver(&line);
                if !self.violations.is_empty() {
                    break;
                }
            }
        }
        // The deposed primary comes back from the dead and must heal in
        // as a replica of the new generation (invariant R3).
        if self.violations.is_empty() && self.config.rejoin_phase {
            self.run_rejoin_phase();
        }
        // And the takeover state must itself survive power loss.
        if self.violations.is_empty() {
            self.restart_active();
        }
        let req_stats = self.net_req.stats();
        let resp_stats = self.net_resp.stats();
        let rj_req_stats = self.net_req2.stats();
        let rj_resp_stats = self.net_resp2.stats();
        ReplReport {
            seed: self.config.seed,
            ops: self.ops,
            wal_records: self.wal_records,
            batches_applied: self.batches_applied,
            records_replicated: self.records_replicated,
            records_skipped: self.records_skipped,
            snapshots_installed: self.snapshots_installed,
            fenced: self.fenced,
            repl_errors: self.repl_errors,
            primary_crashes: self.primary_crashes,
            replica_crashes: self.replica_crashes,
            failovers: self.failovers,
            promoted_epoch: self.promoted_epoch,
            promotion_lsn: self.promotion_lsn,
            partitions: req_stats.partitions
                + resp_stats.partitions
                + rj_req_stats.partitions
                + rj_resp_stats.partitions,
            transport_faults: req_stats.faults()
                + resp_stats.faults()
                + rj_req_stats.faults()
                + rj_resp_stats.faults(),
            score_checks: self.score_checks,
            rejoin_phase: self.config.rejoin_phase,
            rejoins: self.rejoins,
            divergent_records_discarded: self.divergent_discarded,
            rejoin_records_applied: self.rejoin_records,
            rejoined_crashes: self.rejoined_crashes,
            invariant_checks: self.invariant_checks,
            violations: self.violations,
        }
    }
}

/// One scripted client op (same mix as the single-node simulator).
fn scripted_op(rng: &mut SplitMix64, month: i32, n_customers: u64) -> String {
    let draw = rng.below(100);
    if draw < 60 {
        let customer = CustomerId::new(1 + rng.below(n_customers));
        let m = if rng.per_mille(80) {
            (month - 2).max(0) // backdated: may be out-of-order
        } else {
            month + rng.below(2) as i32
        };
        let (y, mo, _) = origin().add_months(m).ymd();
        let day = 1 + rng.below(28) as u32;
        let date = Date::from_ymd(y, mo, day).expect("clamped day is valid");
        let items: Vec<ItemId> = (0..1 + rng.below(4))
            .map(|_| ItemId::new(1 + rng.below(40) as u32))
            .collect();
        Request::Ingest(customer, date, items).to_line()
    } else if draw < 80 {
        let customer = CustomerId::new(1 + rng.below(n_customers + 4));
        Request::Score(customer).to_line()
    } else if draw < 88 {
        let (y, mo, _) = origin().add_months(month).ymd();
        Request::Flush(Date::from_ymd(y, mo, 1).expect("month start is valid")).to_line()
    } else if draw < 96 {
        "PING".to_owned()
    } else {
        format!("BOGUS {}", rng.below(100))
    }
}

/// Run one replicated world to completion. [`ReplReport::assert_ok`]
/// turns a failure into a panic carrying the seed and repro command.
pub fn run_repl(config: &ReplSimConfig) -> ReplReport {
    ReplSim::new(config.clone()).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quiet_world_replicates_fails_over_and_serves() {
        let config = ReplSimConfig {
            faults: FaultPlan::none(),
            partition_per_mille: 0,
            ..ReplSimConfig::for_seed(0)
        };
        let report = run_repl(&config);
        report.assert_ok();
        assert_eq!(report.failovers, 1, "{report:?}");
        assert!(report.records_replicated > 0, "{report:?}");
        assert!(report.promoted_epoch >= 2, "{report:?}");
        assert!(
            report.ops > config.n_ops,
            "the coda must run against the promoted node: {report:?}"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run_repl(&ReplSimConfig::for_seed(9));
        let b = run_repl(&ReplSimConfig::for_seed(9));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = run_repl(&ReplSimConfig::for_seed(10));
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "seed must matter");
    }

    #[test]
    fn the_sweep_shape_is_a_pure_function_of_the_seed() {
        // The repro command carries only the seed, so every knob must
        // re-derive from it, and nearby seeds must cover both sync
        // policies, both checkpoint formats, and both batch sizes.
        let configs: Vec<ReplSimConfig> = (0..16).map(ReplSimConfig::for_seed).collect();
        assert!(configs.iter().any(|c| c.primary_sync == SyncPolicy::Always));
        assert!(configs.iter().any(|c| c.primary_sync != SyncPolicy::Always));
        assert!(configs
            .iter()
            .any(|c| c.checkpoint_format == CheckpointFormat::Text));
        assert!(configs
            .iter()
            .any(|c| c.checkpoint_format == CheckpointFormat::Binary));
        assert!(configs.iter().any(|c| c.batch_max == 5));
        assert!(configs.iter().any(|c| c.batch_max == 64));
    }

    #[test]
    fn repro_command_names_the_public_test() {
        assert_eq!(
            repro_repl_command(7),
            "ATTRITION_REPL_SEED=7 cargo test -p attrition-sim --test repl repro_repl_seed -- --nocapture"
        );
    }
}
