//! The rejoin sweep: seeded replicated worlds that end the way real
//! outages end — the dead primary comes back. After the failover and
//! coda, each world reopens the deposed primary's disk as a replica,
//! runs the `REJOIN` divergence handshake against the promoted node
//! under the full fault schedule (drops, dups, reorders, partitions,
//! crashes of either node, re-promotions), and holds invariant R3: from
//! the moment the old primary adopts the new epoch, its state is
//! byte-equal to the new timeline's log prefix at its applied LSN — no
//! record from the divergent suffix survives anywhere.
//!
//! `ATTRITION_SIM_SEEDS=N` resizes the local sweep. Reproduce any
//! failing seed with:
//!
//! ```text
//! ATTRITION_REPL_SEED=<seed> cargo test -p attrition-sim --test rejoin repro_rejoin_seed -- --nocapture
//! ```

use attrition_sim::{repro_rejoin_command, run_repl, ReplSimBug, ReplSimConfig};

fn sweep_seeds() -> u64 {
    std::env::var("ATTRITION_SIM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Seeded crash→promote→rejoin worlds with every fault class enabled;
/// R1, R2, and R3 must hold throughout, and every world must end with
/// the deposed primary fully converged on the new timeline. This is the
/// tier the CI `rejoin-sweep` job runs on every push.
#[test]
fn rejoin_sweep_under_full_fault_schedules() {
    let seeds = sweep_seeds();
    let mut rejoins = 0u64;
    let mut divergent_discarded = 0u64;
    let mut rejoin_records = 0u64;
    let mut rejoined_crashes = 0u64;
    let mut invariant_checks = 0u64;
    for seed in 0..seeds {
        let report = run_repl(&ReplSimConfig::for_rejoin_seed(seed));
        report.assert_ok();
        assert!(
            report.rejoins >= 1,
            "seed {seed} never completed a rejoin adoption: {report:?}"
        );
        rejoins += report.rejoins;
        divergent_discarded += report.divergent_records_discarded;
        rejoin_records += report.rejoin_records_applied;
        rejoined_crashes += report.rejoined_crashes;
        invariant_checks += report.invariant_checks;
    }
    // The sweep must exercise the machinery, not vacuously pass.
    assert!(rejoins >= seeds, "every world rejoins at least once");
    assert!(
        rejoin_records > seeds,
        "too few new-timeline records applied by rejoined nodes: {rejoin_records}"
    );
    assert!(
        invariant_checks > seeds * 50,
        "too few invariant checks: {invariant_checks}"
    );
    if seeds >= 64 {
        assert!(
            divergent_discarded > 0,
            "no world ever had a divergent suffix to discard — the rejoin \
             path's hard case went untested"
        );
        assert!(
            rejoined_crashes > 0,
            "no rejoining node ever crashed mid-heal"
        );
    }
}

/// The sweep must *fail* when the discard rule is broken: keep the
/// divergent suffix on adoption and demand an R3 violation with a
/// reproducible seed within a small sweep.
#[test]
fn kept_divergent_suffix_is_caught_with_a_printed_seed() {
    let mut caught = None;
    for seed in 0..32 {
        let report = run_repl(&ReplSimConfig::with_bug(
            seed,
            ReplSimBug::KeepDivergentSuffix,
        ));
        if !report.passed() {
            println!(
                "seed {seed} caught the bug: {}\n  repro: {}",
                report.violations[0],
                repro_rejoin_command(seed)
            );
            caught = Some((seed, report));
            break;
        }
    }
    let (seed, report) = caught.expect(
        "KeepDivergentSuffix survived 32 seeds — the sweep cannot catch a \
         rejoin that smuggles divergent records onto the new timeline",
    );
    assert!(
        report.violations[0].contains("R3") || report.violations[0].contains("diverged"),
        "the violation should be a rejoin divergence: {:?}",
        report.violations
    );
    // The seed is a faithful repro: the same world replays the same
    // violation, bit for bit.
    let again = run_repl(&ReplSimConfig::with_bug(
        seed,
        ReplSimBug::KeepDivergentSuffix,
    ));
    assert_eq!(report.violations, again.violations);
}

/// A quiet rejoin world (no faults, no partitions): the deposed primary
/// must heal in, discard nothing it doesn't have to, and converge —
/// with the counters proving the phase actually ran.
#[test]
fn a_quiet_world_heals_the_deposed_primary_back_in() {
    let config = ReplSimConfig {
        faults: attrition_serve::FaultPlan::none(),
        partition_per_mille: 0,
        ..ReplSimConfig::for_rejoin_seed(0)
    };
    let report = run_repl(&config);
    report.assert_ok();
    assert_eq!(report.failovers, 1, "{report:?}");
    assert!(report.rejoins >= 1, "{report:?}");
    assert!(report.rejoin_records_applied > 0, "{report:?}");
    assert!(report.rejoin_phase, "{report:?}");
}

/// The replay hook the repro command targets: runs the rejoin sweep
/// configuration for `ATTRITION_REPL_SEED`, printing the full report.
/// Without the variable set it is a no-op (so plain `cargo test`
/// passes).
#[test]
fn repro_rejoin_seed() {
    let Ok(seed) = std::env::var("ATTRITION_REPL_SEED") else {
        return;
    };
    let seed: u64 = seed
        .parse()
        .expect("ATTRITION_REPL_SEED must be an unsigned 64-bit integer");
    let report = run_repl(&ReplSimConfig::for_rejoin_seed(seed));
    println!("{report:#?}");
    report.assert_ok();
}

/// Rejoin worlds must still be a pure function of the seed — the repro
/// command carries nothing else.
#[test]
fn rejoin_runs_are_deterministic_per_seed() {
    let a = run_repl(&ReplSimConfig::for_rejoin_seed(3));
    let b = run_repl(&ReplSimConfig::for_rejoin_seed(3));
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    let c = run_repl(&ReplSimConfig::for_rejoin_seed(4));
    assert_ne!(format!("{a:?}"), format!("{c:?}"), "seed must matter");
}
