//! The replication sweep: many seeded replicated worlds under full
//! fault schedules (message drops/dups/reorders, partitions, disk
//! faults, crashes of either node, seeded and mandatory failovers), and
//! a self-test proving the sweep catches a re-introduced stale-epoch
//! bug.
//!
//! `ATTRITION_SIM_SEEDS=N` resizes the local sweep. Reproduce any
//! failing seed with:
//!
//! ```text
//! ATTRITION_REPL_SEED=<seed> cargo test -p attrition-sim --test repl repro_repl_seed -- --nocapture
//! ```

use attrition_serve::{FaultPlan, SyncPolicy};
use attrition_sim::{repro_repl_command, run_repl, ReplSimBug, ReplSimConfig};

fn sweep_seeds() -> u64 {
    std::env::var("ATTRITION_SIM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Seeded replicated worlds with every fault class enabled; R1 and R2
/// must hold after every applied shipment, every recovery of either
/// node, and at every promotion. This is the tier the CI `repl-sweep`
/// job runs on every push.
#[test]
fn repl_sweep_under_full_fault_schedules() {
    let seeds = sweep_seeds();
    let mut failovers = 0u64;
    let mut replicated = 0u64;
    let mut fenced = 0u64;
    let mut snapshots = 0u64;
    let mut partitions = 0u64;
    let mut invariant_checks = 0u64;
    for seed in 0..seeds {
        let report = run_repl(&ReplSimConfig::for_seed(seed));
        report.assert_ok();
        failovers += report.failovers;
        replicated += report.records_replicated;
        fenced += report.fenced;
        snapshots += report.snapshots_installed;
        partitions += report.partitions;
        invariant_checks += report.invariant_checks;
    }
    // The sweep must exercise the machinery, not vacuously pass.
    assert!(failovers >= seeds, "every run ends in a failover");
    assert!(
        replicated > seeds * 20,
        "too few records replicated: {replicated}"
    );
    assert!(
        invariant_checks > seeds * 50,
        "too few invariant checks: {invariant_checks}"
    );
    if seeds >= 64 {
        assert!(fenced > 0, "no stale shipment ever hit the fence");
        assert!(partitions > 0, "no partition window ever opened");
        assert!(
            snapshots > 0,
            "no replica ever bootstrapped from a shipped snapshot"
        );
    }
}

/// The sweep must *fail* when the protocol is broken: disable the epoch
/// fence (the replica applies a dead primary's in-flight shipments
/// after promotion) and demand an R2 violation with a reproducible seed
/// within a small sweep.
#[test]
fn stale_epoch_bug_is_caught_with_a_printed_seed() {
    let mut caught = None;
    for seed in 0..32 {
        let report = run_repl(&ReplSimConfig::with_bug(seed, ReplSimBug::AcceptStaleEpoch));
        if !report.passed() {
            println!(
                "seed {seed} caught the bug: {}\n  repro: {}",
                report.violations[0],
                repro_repl_command(seed)
            );
            caught = Some((seed, report));
            break;
        }
    }
    let (seed, report) = caught.expect(
        "AcceptStaleEpoch survived 32 seeds — the sweep cannot catch stale-epoch divergence",
    );
    assert!(
        report.violations[0].contains("R2") || report.violations[0].contains("diverged"),
        "the violation should be a divergence: {:?}",
        report.violations
    );
    // The seed is a faithful repro: the same world replays the same
    // violation, bit for bit.
    let again = run_repl(&ReplSimConfig::with_bug(seed, ReplSimBug::AcceptStaleEpoch));
    assert_eq!(report.violations, again.violations);
}

/// The same stale-epoch scenario, scripted deterministically (no seeds,
/// no sweep): a batch fetched from the primary is still in flight when
/// the replica is promoted. With the fence on it must be rejected; with
/// the fence off it lands — records the new timeline disowned.
#[test]
fn scripted_stale_shipment_is_fenced_and_the_bug_applies_it() {
    use attrition_core::StabilityParams;
    use attrition_replica::{FetchResponse, PrimaryService, ReplicaConfig, ReplicaEngine};
    use attrition_serve::checkpoint::CheckpointFormat;
    use attrition_serve::engine::DurabilityConfig;
    use attrition_serve::recovery::Fallback;
    use attrition_serve::shard::ShardedMonitor;
    use attrition_serve::{Engine, Service, Storage};
    use attrition_sim::{SimClock, SimStorage};
    use attrition_store::WindowSpec;
    use attrition_types::Date;
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    let origin = Date::from_ymd(2012, 5, 1).unwrap();
    let fallback = Fallback {
        spec: WindowSpec::months(origin, 1),
        params: StabilityParams::PAPER,
        max_explanations: 5,
    };

    // Each scenario is its own little world; `fence` toggles the bug.
    let run_scenario = |fence: bool| -> (Result<attrition_replica::Applied, String>, String) {
        let storage_p: Arc<SimStorage> = Arc::new(SimStorage::new());
        let storage_r: Arc<SimStorage> = Arc::new(SimStorage::new());
        let clock = Arc::new(SimClock::new());
        let pdir = Path::new("/sim/primary");
        let pcfg = DurabilityConfig {
            wal_dir: PathBuf::from(pdir),
            sync_policy: SyncPolicy::Always,
            checkpoint_every_requests: 0,
            checkpoint_every: None,
            keep_checkpoints: 2,
            checkpoint_format: CheckpointFormat::Binary,
            fault_plan: None,
        };
        let monitor = ShardedMonitor::new(2, fallback.spec, StabilityParams::PAPER, 5);
        let engine = Engine::open_in(
            monitor,
            None,
            Some(&pcfg),
            1,
            Arc::clone(&storage_p) as Arc<dyn Storage>,
            clock.clone(),
        )
        .unwrap();
        let primary = PrimaryService::open_in(
            Arc::new(engine),
            Arc::clone(&storage_p) as Arc<dyn Storage>,
            pdir,
        )
        .unwrap();
        for day in 2..=7 {
            let (_verb, resp) = primary.respond(&format!("INGEST 1 2012-05-0{day} 10 11"));
            assert!(resp.starts_with("OK"), "{resp}");
        }

        let rcfg = ReplicaConfig {
            accept_stale_epoch: !fence,
            ..ReplicaConfig::new("/sim/replica", fallback)
        };
        let (replica, _stats) = ReplicaEngine::open_in(
            rcfg,
            Arc::clone(&storage_r) as Arc<dyn Storage>,
            clock.clone(),
        )
        .unwrap();

        // Ship the first three records and apply them.
        let (_verb, resp) = primary.respond(&replica.fetch_request(3).to_line());
        let applied = replica
            .apply_response(&FetchResponse::parse(&resp).unwrap())
            .unwrap();
        assert_eq!(applied.applied_seq, 3);

        // Fetch the tail — but leave it in flight.
        let (_verb, stale_text) = primary.respond(&replica.fetch_request(10).to_line());
        let stale = FetchResponse::parse(&stale_text).unwrap();
        assert_eq!(stale.epoch(), 1);

        // The primary dies; the replica takes over at LSN 3, epoch 2.
        let (_verb, promoted) = replica.respond("PROMOTE");
        assert_eq!(promoted, "OK promoted 2 3");
        let before = replica.engine().monitor().snapshot();

        // Now the in-flight epoch-1 shipment (records 4..=6, above the
        // takeover LSN) lands.
        (replica.apply_response(&stale), {
            let after = replica.engine().monitor().snapshot();
            if after == before {
                "unchanged".into()
            } else {
                "mutated".into()
            }
        })
    };

    let (fenced, state) = run_scenario(true);
    let err = fenced.expect_err("the fence must reject a stale-epoch shipment");
    assert!(err.contains("fenced"), "{err}");
    assert_eq!(
        state, "unchanged",
        "a fenced shipment must not mutate state"
    );

    let (accepted, state) = run_scenario(false);
    let applied = accepted.expect("with the fence disabled the stale shipment applies");
    assert_eq!(applied.fresh, 3, "records 4..=6 land on the wrong timeline");
    assert_eq!(state, "mutated", "the divergence R2 exists to catch");
}

/// The replay hook the repro command targets: runs the standard sweep
/// configuration for `ATTRITION_REPL_SEED`, printing the full report.
/// Without the variable set it is a no-op (so plain `cargo test`
/// passes).
#[test]
fn repro_repl_seed() {
    let Ok(seed) = std::env::var("ATTRITION_REPL_SEED") else {
        return;
    };
    let seed: u64 = seed
        .parse()
        .expect("ATTRITION_REPL_SEED must be an unsigned 64-bit integer");
    let report = run_repl(&ReplSimConfig::for_seed(seed));
    println!("{report:#?}");
    report.assert_ok();
}

/// Replica sync policy shapes the ack floor: keep both policies in the
/// sweep's low seeds so R1 is tested where acks lag reality.
#[test]
fn sweep_covers_lagging_ack_floors() {
    let lagging = (0..8).any(|s| ReplSimConfig::for_seed(s).replica_sync != SyncPolicy::Always);
    let tight = (0..8).any(|s| ReplSimConfig::for_seed(s).replica_sync == SyncPolicy::Always);
    assert!(lagging && tight);
    // And the bug configuration keeps the full fault schedule running.
    let bug = ReplSimConfig::with_bug(0, ReplSimBug::AcceptStaleEpoch);
    assert!(bug.faults.drop_per_mille > 0);
    assert_eq!(
        FaultPlan::seeded(0).crash_per_mille,
        bug.faults.crash_per_mille
    );
}
