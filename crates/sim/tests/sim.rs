//! The simulation sweep: many seeded worlds, full fault schedules, and
//! a self-test that proves the harness catches a re-introduced bug.
//!
//! Reproduce any failing seed the sweep (or CI) prints with:
//!
//! ```text
//! ATTRITION_SIM_SEED=<seed> cargo test -p attrition-sim --test sim repro_seed -- --nocapture
//! ```

use attrition_sim::{repro_command, run, SimBug, SimConfig};

/// Seeded worlds (64 by default, `ATTRITION_SIM_SEEDS=N` resizes the
/// local sweep) with every fault class enabled; both invariants must
/// hold after every recovery in every world. This is the tier the CI
/// `sim-sweep` job runs on every push (and 4096 seeds weekly, via
/// `simctl`).
#[test]
fn sweep_64_seeds_under_full_fault_schedules() {
    let seeds: u64 = std::env::var("ATTRITION_SIM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut crashes = 0u64;
    let mut faults = 0u64;
    let mut score_checks = 0u64;
    for seed in 0..seeds {
        let report = run(&SimConfig::for_seed(seed));
        report.assert_ok();
        crashes += report.crashes;
        faults += report.faults_injected;
        score_checks += report.score_checks;
    }
    // The sweep must actually exercise the machinery, not vacuously pass.
    assert!(crashes >= seeds, "every run ends in a mandatory crash");
    assert!(faults > seeds * 8, "fault schedules barely fired: {faults}");
    assert!(
        score_checks > seeds * 16,
        "too few score checks: {score_checks}"
    );
}

/// The harness must *fail* when the stack is broken: re-introduce the
/// torn-tail bug (recovery's truncation undone, so appends land behind
/// garbage and the next recovery loses them) and demand a violation
/// with a reproducible seed within a small sweep.
#[test]
fn known_bad_schedule_fails_with_a_printed_seed() {
    let mut caught = None;
    for seed in 0..32 {
        let report = run(&SimConfig::with_bug(seed, SimBug::KeepTornTail));
        if !report.passed() {
            println!(
                "seed {seed} caught the bug: {}\n  repro: {}",
                report.violations[0],
                repro_command(seed)
            );
            caught = Some((seed, report));
            break;
        }
    }
    let (seed, report) = caught
        .expect("KeepTornTail survived 32 seeds — the harness cannot catch real torn-tail bugs");
    assert!(
        report.violations[0].contains("lost"),
        "the violation should be a durability loss: {:?}",
        report.violations
    );
    // The seed is a faithful repro: the same world replays the same
    // violation, bit for bit.
    let again = run(&SimConfig::with_bug(seed, SimBug::KeepTornTail));
    assert_eq!(report.violations, again.violations);
}

/// The replay hook the repro command targets: runs the standard sweep
/// configuration for `ATTRITION_SIM_SEED`, printing the full report.
/// Without the variable set it is a no-op (so plain `cargo test`
/// passes).
#[test]
fn repro_seed() {
    let Ok(seed) = std::env::var("ATTRITION_SIM_SEED") else {
        return;
    };
    let seed: u64 = seed
        .parse()
        .expect("ATTRITION_SIM_SEED must be an unsigned 64-bit integer");
    let report = run(&SimConfig::for_seed(seed));
    println!("{report:#?}");
    report.assert_ok();
}
