//! Binary columnar persistence for [`ReceiptStore`].
//!
//! CSV is the interchange format; this is the *working* format — the
//! store's five columns written verbatim, little-endian, behind a magic
//! and version header. Loading is a straight column read plus index
//! rebuild with no per-row text parsing; the `substrate` bench group
//! measures the load-time gap against CSV.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0..8)    magic  b"ATTRSTO1"
//! [8..16)   u64    n  (receipts)
//! [16..24)  u64    m  (item occurrences)
//! [..]      u64×n  customer ids
//! [..]      i32×n  dates (days since epoch)
//! [..]      i64×n  totals (cents)
//! [..]      u32×(n+1) basket offsets (offsets[0] = 0, offsets[n] = m)
//! [..]      u32×m  item ids
//! ```
//!
//! The reader validates the header, the section lengths, offset
//! monotonicity, and the `(customer, date)` sort invariant before
//! constructing the store, so a corrupted file cannot produce a store
//! that violates the crate's invariants.

use crate::{ReceiptStore, ReceiptStoreBuilder, StoreError};
use attrition_types::{Basket, Cents, CustomerId, Date, ItemId, Receipt};

/// File magic: "ATTRSTO" + format version 1.
pub const MAGIC: [u8; 8] = *b"ATTRSTO1";

fn corrupt(message: impl Into<String>) -> StoreError {
    StoreError::Csv {
        line: 0,
        message: format!("binary store: {}", message.into()),
    }
}

/// A structured failure while decoding a little-endian binary buffer:
/// the byte offset the reader stood at and what it expected there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteError {
    /// Offset (from the start of the buffer) the failed read began at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ByteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ByteError {}

/// Little-endian byte sink shared by every binary format in the
/// workspace (the receipt-store columns here, the monitor snapshot in
/// `attrition-core`, the checkpoint framing in `attrition-serve`).
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// An empty writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes verbatim.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (lossless; restoring
    /// via [`ByteReader::f64`] returns the identical bits).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// The accumulated buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian cursor over a byte buffer; every read is bounds-checked
/// and failures carry the offset ([`ByteError`]), so a truncated or
/// bit-flipped file surfaces as a structured error instead of a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    /// Current offset from the start of the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consume exactly `len` bytes.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], ByteError> {
        let end = self.pos.checked_add(len).ok_or_else(|| ByteError {
            offset: self.pos,
            message: "length overflow".into(),
        })?;
        if end > self.bytes.len() {
            return Err(ByteError {
                offset: self.pos,
                message: format!(
                    "truncated: need {len} more bytes, have {}",
                    self.bytes.len() - self.pos
                ),
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, ByteError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ByteError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ByteError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, ByteError> {
        Ok(i32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, ByteError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` written by [`ByteWriter::f64`] (bit-exact).
    pub fn f64(&mut self) -> Result<f64, ByteError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Require that the buffer is fully consumed.
    pub fn finish(&self) -> Result<(), ByteError> {
        if self.pos != self.bytes.len() {
            return Err(ByteError {
                offset: self.pos,
                message: format!("{} trailing bytes", self.bytes.len() - self.pos),
            });
        }
        Ok(())
    }
}

/// Serialize a store to the binary columnar format.
pub fn store_to_bytes(store: &ReceiptStore) -> Vec<u8> {
    let n = store.num_receipts();
    let m = store.num_item_occurrences();
    let mut out = Vec::with_capacity(24 + n * (8 + 4 + 8 + 4) + 4 + m * 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    // Column passes keep writes sequential.
    for r in store.receipts() {
        out.extend_from_slice(&r.customer.raw().to_le_bytes());
    }
    for r in store.receipts() {
        out.extend_from_slice(&r.date.days_since_epoch().to_le_bytes());
    }
    for r in store.receipts() {
        out.extend_from_slice(&r.total.raw().to_le_bytes());
    }
    let mut offset = 0u32;
    out.extend_from_slice(&offset.to_le_bytes());
    for r in store.receipts() {
        offset += r.items.len() as u32;
        out.extend_from_slice(&offset.to_le_bytes());
    }
    for r in store.receipts() {
        for item in r.items {
            out.extend_from_slice(&item.raw().to_le_bytes());
        }
    }
    out
}

fn byte_err(e: ByteError) -> StoreError {
    corrupt(e.to_string())
}

/// Deserialize a store from the binary columnar format.
pub fn store_from_bytes(bytes: &[u8]) -> Result<ReceiptStore, StoreError> {
    let mut cur = ByteReader::new(bytes);
    if cur.take(8).map_err(byte_err)? != MAGIC {
        return Err(corrupt("bad magic (not an attrition store file?)"));
    }
    let n = cur.u64().map_err(byte_err)? as usize;
    let m = cur.u64().map_err(byte_err)? as usize;

    let customers = cur.take(n * 8).map_err(byte_err)?;
    let dates = cur.take(n * 4).map_err(byte_err)?;
    let totals = cur.take(n * 8).map_err(byte_err)?;
    let offsets = cur.take((n + 1) * 4).map_err(byte_err)?;
    let items = cur.take(m * 4).map_err(byte_err)?;
    cur.finish().map_err(byte_err)?;

    let read_u32 = |buf: &[u8], i: usize| -> u32 {
        u32::from_le_bytes(buf[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
    };
    // Validate offsets before touching the item buffer.
    if read_u32(offsets, 0) != 0 {
        return Err(corrupt("offsets must start at 0"));
    }
    if read_u32(offsets, n) as usize != m {
        return Err(corrupt("final offset does not match item count"));
    }
    for i in 0..n {
        if read_u32(offsets, i) > read_u32(offsets, i + 1) {
            return Err(corrupt(format!("offsets not monotone at row {i}")));
        }
    }

    // Rebuild through the builder: it re-sorts, which also restores the
    // index and keeps every invariant in one place. Verify the input was
    // already sorted so silent corruption is still reported.
    let mut prev: Option<(u64, i32)> = None;
    let mut builder = ReceiptStoreBuilder::with_capacity(n);
    for i in 0..n {
        let customer = u64::from_le_bytes(customers[i * 8..i * 8 + 8].try_into().expect("8"));
        let date = i32::from_le_bytes(dates[i * 4..i * 4 + 4].try_into().expect("4"));
        let total = i64::from_le_bytes(totals[i * 8..i * 8 + 8].try_into().expect("8"));
        if let Some((pc, pd)) = prev {
            if (customer, date) < (pc, pd) {
                return Err(corrupt(format!("rows not sorted at row {i}")));
            }
        }
        prev = Some((customer, date));
        let lo = read_u32(offsets, i) as usize;
        let hi = read_u32(offsets, i + 1) as usize;
        let basket_items: Vec<ItemId> = items[lo * 4..hi * 4]
            .chunks_exact(4)
            .map(|c| ItemId::new(u32::from_le_bytes(c.try_into().expect("4"))))
            .collect();
        builder.push(Receipt::new(
            CustomerId::new(customer),
            Date::from_days(date),
            Basket::new(basket_items),
            Cents(total),
        ));
    }
    Ok(builder.build())
}

/// Write a store to a file.
pub fn write_store_file(store: &ReceiptStore, path: &std::path::Path) -> Result<(), StoreError> {
    std::fs::write(path, store_to_bytes(store))?;
    Ok(())
}

/// Read a store from a file.
pub fn read_store_file(path: &std::path::Path) -> Result<ReceiptStore, StoreError> {
    let bytes = std::fs::read(path)?;
    store_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn sample() -> ReceiptStore {
        let mut b = ReceiptStoreBuilder::new();
        b.push(Receipt::new(
            CustomerId::new(2),
            d(2012, 6, 1),
            Basket::from_raw(&[5, 6]),
            Cents(700),
        ));
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 5, 2),
            Basket::from_raw(&[1, 2, 3]),
            Cents(-50), // negative totals (refunds) must survive
        ));
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 7, 2),
            Basket::empty(),
            Cents(0),
        ));
        b.build()
    }

    #[test]
    fn roundtrip() {
        let store = sample();
        let bytes = store_to_bytes(&store);
        let back = store_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_receipts(), store.num_receipts());
        for (a, b) in store.receipts().zip(back.receipts()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_store_roundtrip() {
        let store = ReceiptStoreBuilder::new().build();
        let back = store_from_bytes(&store_to_bytes(&store)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = store_to_bytes(&sample());
        bytes[0] = b'X';
        assert!(store_from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = store_to_bytes(&sample());
        for cut in [4usize, 16, 24, bytes.len() - 1] {
            assert!(
                store_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = store_to_bytes(&sample());
        bytes.push(0);
        assert!(store_from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupted_offsets_rejected() {
        let store = sample();
        let n = store.num_receipts();
        let mut bytes = store_to_bytes(&store);
        // First offset starts right after the three fixed-width columns.
        let offsets_start = 24 + n * 8 + n * 4 + n * 8;
        bytes[offsets_start] = 7; // offsets[0] != 0
        assert!(store_from_bytes(&bytes).is_err());
    }

    #[test]
    fn unsorted_rows_rejected() {
        let store = sample();
        let mut bytes = store_to_bytes(&store);
        // Swap the first and last customer ids (1 and 2) to break the sort.
        let (a, b) = (24, 24 + 16);
        for i in 0..8 {
            bytes.swap(a + i, b + i);
        }
        assert!(store_from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("attrition_store_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        let store = sample();
        write_store_file(&store, &path).unwrap();
        let back = read_store_file(&path).unwrap();
        assert_eq!(back.num_receipts(), store.num_receipts());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn layout_size_is_exactly_as_documented() {
        let store = sample();
        let n = store.num_receipts();
        let m = store.num_item_occurrences();
        let bytes = store_to_bytes(&store);
        // header + (u64 + i32 + i64 + u32)/row + leading offset + items.
        assert_eq!(bytes.len(), 24 + n * (8 + 4 + 8 + 4) + 4 + m * 4);
        assert_eq!(&bytes[..8], &MAGIC);
    }
}
