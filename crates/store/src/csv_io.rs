//! CSV import/export for receipts and taxonomies.
//!
//! Receipt schema (one row per receipt):
//! `customer,date,total_cents,items` where `items` is a space-separated
//! list of raw item ids — e.g. `42,2012-05-03,1250,3 17 99`.
//!
//! Taxonomy schema (one row per product):
//! `item,segment,item_name,segment_name,price_cents`.
//!
//! Both formats roundtrip exactly and are what the CLI's `generate`
//! subcommand writes and the other subcommands read.

use crate::{ReceiptStore, ReceiptStoreBuilder, StoreError};
use attrition_types::{
    Basket, Cents, CustomerId, Date, ItemId, Receipt, Taxonomy, TaxonomyBuilder,
};
use attrition_util::csv::{parse_document, CsvWriter};

/// Header of the receipts CSV.
pub const RECEIPTS_HEADER: [&str; 4] = ["customer", "date", "total_cents", "items"];

/// Header of the taxonomy CSV.
pub const TAXONOMY_HEADER: [&str; 5] = [
    "item",
    "segment",
    "item_name",
    "segment_name",
    "price_cents",
];

/// Serialize a store to receipts CSV (with header).
pub fn receipts_to_csv(store: &ReceiptStore) -> String {
    let mut w = CsvWriter::new();
    w.record(&RECEIPTS_HEADER);
    let mut items_buf = String::new();
    for r in store.receipts() {
        items_buf.clear();
        for (i, item) in r.items.iter().enumerate() {
            if i > 0 {
                items_buf.push(' ');
            }
            items_buf.push_str(&item.raw().to_string());
        }
        w.record(&[
            &r.customer.raw().to_string(),
            &r.date.to_string(),
            &r.total.raw().to_string(),
            &items_buf,
        ]);
    }
    w.finish()
}

fn csv_err(line: usize, message: impl Into<String>) -> StoreError {
    StoreError::Csv {
        line,
        message: message.into(),
    }
}

fn parse_receipt_row(fields: &[String], line: usize) -> Result<Receipt, StoreError> {
    if fields.len() != 4 {
        return Err(csv_err(
            line,
            format!("expected 4 fields, got {}", fields.len()),
        ));
    }
    let customer: u64 = fields[0]
        .parse()
        .map_err(|_| csv_err(line, "bad customer id"))?;
    let date = Date::parse_iso(&fields[1]).map_err(|e| csv_err(line, e.to_string()))?;
    let total: i64 = fields[2]
        .parse()
        .map_err(|_| csv_err(line, "bad total_cents"))?;
    let mut items = Vec::new();
    for tok in fields[3].split_whitespace() {
        let raw: u32 = tok
            .parse()
            .map_err(|_| csv_err(line, format!("bad item id {tok:?}")))?;
        items.push(ItemId::new(raw));
    }
    Ok(Receipt::new(
        CustomerId::new(customer),
        date,
        Basket::new(items),
        Cents(total),
    ))
}

/// Flush ingest telemetry once per parse (no per-row atomics).
fn record_ingest_metrics(bytes: usize, rows: u64, receipts: u64, quarantined: u64) {
    if !attrition_obs::enabled() {
        return;
    }
    let registry = attrition_obs::global();
    registry.counter("store.bytes_read").add(bytes as u64);
    registry.counter("store.rows_read").add(rows);
    registry.counter("store.receipts_loaded").add(receipts);
    registry.counter("store.rows_quarantined").add(quarantined);
}

fn parse_receipts(text: &str, lenient: bool) -> Result<(ReceiptStore, u64), StoreError> {
    let mut builder = ReceiptStoreBuilder::new();
    let mut rows = 0u64;
    let mut receipts = 0u64;
    let mut quarantined = 0u64;
    for (idx, record) in parse_document(text).enumerate() {
        let line = idx + 1;
        let parsed = record
            .ok_or_else(|| csv_err(line, "malformed record"))
            .and_then(|fields| {
                if idx == 0 && fields.first().map(String::as_str) == Some("customer") {
                    Ok(None) // header
                } else {
                    parse_receipt_row(&fields, line).map(Some)
                }
            });
        match parsed {
            Ok(None) => continue,
            Ok(Some(receipt)) => {
                rows += 1;
                receipts += 1;
                builder.push(receipt);
            }
            Err(err) if lenient => {
                rows += 1;
                quarantined += 1;
                let _ = err;
            }
            Err(err) => return Err(err),
        }
    }
    record_ingest_metrics(text.len(), rows, receipts, quarantined);
    Ok((builder.build(), quarantined))
}

/// Parse receipts CSV (tolerates a missing header) into a store. Any
/// malformed row aborts the parse with a [`StoreError::Csv`].
pub fn receipts_from_csv(text: &str) -> Result<ReceiptStore, StoreError> {
    parse_receipts(text, false).map(|(store, _)| store)
}

/// Parse receipts CSV, quarantining malformed rows instead of failing:
/// bad rows are skipped and counted (returned, and recorded under the
/// `store.rows_quarantined` metric) while every well-formed row loads.
pub fn receipts_from_csv_lenient(text: &str) -> (ReceiptStore, u64) {
    parse_receipts(text, true).expect("lenient parse cannot fail")
}

/// Serialize a taxonomy to CSV (with header).
pub fn taxonomy_to_csv(taxonomy: &Taxonomy) -> String {
    let mut w = CsvWriter::new();
    w.record(&TAXONOMY_HEADER);
    for p in taxonomy.products() {
        let seg_name = taxonomy
            .segment(p.segment)
            .map(|s| s.name.clone())
            .unwrap_or_default();
        w.record(&[
            &p.item.raw().to_string(),
            &p.segment.raw().to_string(),
            &p.name,
            &seg_name,
            &p.price.raw().to_string(),
        ]);
    }
    w.finish()
}

/// Parse taxonomy CSV back into a [`Taxonomy`].
///
/// Requires products to appear with dense, ascending item ids and dense
/// segment ids (which is what [`taxonomy_to_csv`] produces).
pub fn taxonomy_from_csv(text: &str) -> Result<Taxonomy, StoreError> {
    let mut builder = TaxonomyBuilder::new();
    let mut next_segment: u32 = 0;
    let mut next_item: u32 = 0;
    for (idx, record) in parse_document(text).enumerate() {
        let line = idx + 1;
        let fields = record.ok_or_else(|| csv_err(line, "malformed record"))?;
        if idx == 0 && fields.first().map(String::as_str) == Some("item") {
            continue;
        }
        if fields.len() != 5 {
            return Err(csv_err(
                line,
                format!("expected 5 fields, got {}", fields.len()),
            ));
        }
        let item: u32 = fields[0]
            .parse()
            .map_err(|_| csv_err(line, "bad item id"))?;
        let segment: u32 = fields[1]
            .parse()
            .map_err(|_| csv_err(line, "bad segment id"))?;
        let price: i64 = fields[4]
            .parse()
            .map_err(|_| csv_err(line, "bad price_cents"))?;
        if item != next_item {
            return Err(csv_err(
                line,
                format!("expected dense item id {next_item}, got {item}"),
            ));
        }
        next_item += 1;
        // Register segments as their ids first appear; ids must be dense.
        while next_segment <= segment {
            builder.add_segment(fields[3].clone());
            next_segment += 1;
        }
        builder
            .add_product(
                attrition_types::SegmentId::new(segment),
                fields[2].clone(),
                Cents(price),
            )
            .map_err(|e| csv_err(line, e.to_string()))?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_types::TaxonomyBuilder;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn sample_store() -> ReceiptStore {
        let mut b = ReceiptStoreBuilder::new();
        b.push(Receipt::new(
            CustomerId::new(7),
            d(2012, 5, 3),
            Basket::from_raw(&[3, 17]),
            Cents(1250),
        ));
        b.push(Receipt::new(
            CustomerId::new(7),
            d(2012, 5, 10),
            Basket::from_raw(&[]),
            Cents(0),
        ));
        b.build()
    }

    #[test]
    fn receipts_roundtrip() {
        let store = sample_store();
        let csv = receipts_to_csv(&store);
        assert!(csv.starts_with("customer,date,total_cents,items\n"));
        let back = receipts_from_csv(&csv).unwrap();
        assert_eq!(back.num_receipts(), 2);
        let r = back.receipt(0).unwrap();
        assert_eq!(r.customer, CustomerId::new(7));
        assert_eq!(r.date, d(2012, 5, 3));
        assert_eq!(r.total, Cents(1250));
        assert_eq!(r.items, &[ItemId::new(3), ItemId::new(17)]);
        // Empty basket row survives.
        assert_eq!(back.receipt(1).unwrap().items.len(), 0);
    }

    #[test]
    fn receipts_without_header_accepted() {
        let back = receipts_from_csv("5,2013-01-02,99,1 2\n").unwrap();
        assert_eq!(back.num_receipts(), 1);
    }

    #[test]
    fn receipts_bad_rows_rejected() {
        assert!(receipts_from_csv("a,2013-01-02,99,1\n").is_err());
        assert!(receipts_from_csv("5,2013-13-02,99,1\n").is_err());
        assert!(receipts_from_csv("5,2013-01-02,x,1\n").is_err());
        assert!(receipts_from_csv("5,2013-01-02,99,zap\n").is_err());
        assert!(receipts_from_csv("5,2013-01-02,99\n").is_err());
    }

    #[test]
    fn lenient_parse_quarantines_bad_rows() {
        let csv = "customer,date,total_cents,items\n\
                   5,2013-01-02,99,1 2\n\
                   x,2013-01-02,99,1\n\
                   6,2013-01-03,50,\n\
                   7,2013-13-09,10,3\n";
        let (store, quarantined) = receipts_from_csv_lenient(csv);
        assert_eq!(store.num_receipts(), 2);
        assert_eq!(quarantined, 2);
    }

    #[test]
    fn lenient_parse_records_metrics_when_enabled() {
        let csv = "5,2013-01-02,99,1 2\nbad row\n";
        attrition_obs::set_enabled(true);
        attrition_obs::global().reset();
        let (store, quarantined) = receipts_from_csv_lenient(csv);
        let snap = attrition_obs::global().snapshot();
        attrition_obs::set_enabled(false);
        attrition_obs::global().reset();
        assert_eq!(store.num_receipts(), 1);
        assert_eq!(quarantined, 1);
        // Other tests in this process may parse concurrently while the
        // flag is up, so assert lower bounds except for quarantining,
        // which only this test triggers.
        assert_eq!(snap.counter("store.rows_quarantined"), Some(1));
        assert!(snap.counter("store.rows_read").unwrap_or(0) >= 2);
        assert!(snap.counter("store.receipts_loaded").unwrap_or(0) >= 1);
        assert!(snap.counter("store.bytes_read").unwrap_or(0) >= csv.len() as u64);
    }

    #[test]
    fn csv_error_reports_line() {
        let err = receipts_from_csv("customer,date,total_cents,items\n5,bad,9,1\n").unwrap_err();
        match err {
            StoreError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    fn sample_taxonomy() -> Taxonomy {
        let mut t = TaxonomyBuilder::new();
        let coffee = t.add_segment("coffee");
        let milk = t.add_segment("milk");
        t.add_product(coffee, "arabica, ground", Cents(400))
            .unwrap();
        t.add_product(milk, "whole 1L", Cents(120)).unwrap();
        t.build()
    }

    #[test]
    fn taxonomy_roundtrip() {
        let tax = sample_taxonomy();
        let csv = taxonomy_to_csv(&tax);
        let back = taxonomy_from_csv(&csv).unwrap();
        assert_eq!(back.num_products(), 2);
        assert_eq!(back.num_segments(), 2);
        // The quoted comma in the product name survives.
        assert_eq!(
            back.product(ItemId::new(0)).unwrap().name,
            "arabica, ground"
        );
        assert_eq!(back.price_of(ItemId::new(1)).unwrap(), Cents(120));
        assert_eq!(
            back.segment(attrition_types::SegmentId::new(1))
                .unwrap()
                .name,
            "milk"
        );
    }

    #[test]
    fn taxonomy_non_dense_rejected() {
        let csv = "item,segment,item_name,segment_name,price_cents\n5,0,p,s,10\n";
        assert!(taxonomy_from_csv(csv).is_err());
    }
}
