//! Store errors.

use std::fmt;

/// Errors raised by the receipt store and its importers.
#[derive(Debug)]
pub enum StoreError {
    /// A customer id that is not present in the store.
    UnknownCustomer(u64),
    /// A receipt row index out of range.
    RowOutOfRange {
        /// Requested row.
        row: usize,
        /// Number of rows in the store.
        len: usize,
    },
    /// CSV input that failed to parse, with 1-based line number.
    Csv {
        /// 1-based line of the offending record (0 for binary formats).
        line: usize,
        /// Human-readable cause.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// Domain-type construction failure during import.
    Type(attrition_types::TypeError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownCustomer(id) => write!(f, "unknown customer id {id}"),
            StoreError::RowOutOfRange { row, len } => {
                write!(f, "receipt row {row} out of range (store has {len})")
            }
            StoreError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Type(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<attrition_types::TypeError> for StoreError {
    fn from(e: attrition_types::TypeError) -> StoreError {
        StoreError::Type(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::UnknownCustomer(9).to_string().contains("9"));
        assert!(StoreError::RowOutOfRange { row: 5, len: 2 }
            .to_string()
            .contains("5"));
        assert!(StoreError::Csv {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
    }

    #[test]
    fn conversions() {
        let io: StoreError = std::io::Error::other("x").into();
        assert!(matches!(io, StoreError::Io(_)));
        let ty: StoreError = attrition_types::TypeError::InvalidMonth(0).into();
        assert!(matches!(ty, StoreError::Type(_)));
        use std::error::Error;
        assert!(io.source().is_some());
    }
}
