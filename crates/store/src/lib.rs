//! # attrition-store
//!
//! The data substrate of the reproduction: a columnar, read-optimized
//! store of retail receipts plus the paper's *windowed database*
//! transformation.
//!
//! The paper (Section 2) represents the purchases of customer `i` as a
//! chronologically ordered list `D_i = ⟨(b_1,t_1),…,(b_N,t_N)⟩` and derives
//! the windowed database `D_i^w`: consecutive non-overlapping windows of
//! span `w`, where `u_k` is the set of all products bought during window
//! `k`. [`ReceiptStore`] holds the raw receipts in columnar form (sorted by
//! customer, then date — so `D_i` is a contiguous slice) and [`windowing`]
//! derives `D_i^w` from it.
//!
//! Additional services: CSV import/export ([`csv_io`]), dataset statistics
//! matching the paper's Section 3 description ([`stats`]), and projection
//! of products onto taxonomy segments ([`segment_view`]), which is the
//! granularity the paper's experiments run at.

pub mod binary_io;
pub mod csv_io;
pub mod error;
pub mod query;
pub mod receipt_store;
pub mod replay;
pub mod segment_view;
pub mod stats;
pub mod windowing;

pub use binary_io::{
    read_store_file, store_from_bytes, store_to_bytes, write_store_file, ByteError, ByteReader,
    ByteWriter,
};
pub use error::StoreError;
pub use query::Query;
pub use receipt_store::{ReceiptRef, ReceiptStore, ReceiptStoreBuilder};
pub use replay::chronological;
pub use segment_view::project_to_segments;
pub use stats::DatasetStats;
pub use windowing::{CustomerWindows, WindowAlignment, WindowLength, WindowSpec, WindowedDatabase};
