//! Declarative receipt queries.
//!
//! Composable filter over a [`ReceiptStore`]: date range, customer set,
//! item presence, basket size, spend. Evaluation is a single scan that
//! prunes to the matching customers' row ranges when a customer filter
//! is present (the store is customer-sorted, so that turns a full scan
//! into a handful of slice walks). Results stream as
//! [`ReceiptRef`](crate::ReceiptRef)s or materialize into a new store.

use crate::{ReceiptRef, ReceiptStore, ReceiptStoreBuilder};
use attrition_types::{Cents, CustomerId, Date, ItemId};
use std::collections::BTreeSet;

/// A composable receipt filter. All set conditions must hold (AND).
///
/// ```
/// use attrition_store::{Query, ReceiptStoreBuilder};
/// use attrition_types::{Basket, Cents, CustomerId, Date, Receipt};
///
/// let mut builder = ReceiptStoreBuilder::new();
/// builder.push(Receipt::new(
///     CustomerId::new(7),
///     Date::from_ymd(2012, 6, 3).unwrap(),
///     Basket::from_raw(&[1, 2, 3]),
///     Cents(1250),
/// ));
/// let store = builder.build();
///
/// let big_june_baskets = Query::new()
///     .from(Date::from_ymd(2012, 6, 1).unwrap())
///     .until(Date::from_ymd(2012, 7, 1).unwrap())
///     .min_basket_size(3);
/// assert_eq!(big_june_baskets.count(&store), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Query {
    customers: Option<BTreeSet<CustomerId>>,
    from: Option<Date>,
    until: Option<Date>,
    contains_item: Option<ItemId>,
    min_basket_size: Option<usize>,
    min_total: Option<Cents>,
}

impl Query {
    /// Match everything.
    pub fn new() -> Query {
        Query::default()
    }

    /// Restrict to the given customers.
    pub fn customers(mut self, ids: impl IntoIterator<Item = CustomerId>) -> Query {
        self.customers = Some(ids.into_iter().collect());
        self
    }

    /// Receipts dated `from` or later (inclusive).
    pub fn from(mut self, from: Date) -> Query {
        self.from = Some(from);
        self
    }

    /// Receipts dated strictly before `until` (exclusive).
    pub fn until(mut self, until: Date) -> Query {
        self.until = Some(until);
        self
    }

    /// Baskets containing the item.
    pub fn contains_item(mut self, item: ItemId) -> Query {
        self.contains_item = Some(item);
        self
    }

    /// Baskets with at least `n` distinct items.
    pub fn min_basket_size(mut self, n: usize) -> Query {
        self.min_basket_size = Some(n);
        self
    }

    /// Receipts totalling at least `cents`.
    pub fn min_total(mut self, cents: Cents) -> Query {
        self.min_total = Some(cents);
        self
    }

    fn matches(&self, r: &ReceiptRef<'_>) -> bool {
        if let Some(from) = self.from {
            if r.date < from {
                return false;
            }
        }
        if let Some(until) = self.until {
            if r.date >= until {
                return false;
            }
        }
        if let Some(item) = self.contains_item {
            if r.items.binary_search(&item).is_err() {
                return false;
            }
        }
        if let Some(n) = self.min_basket_size {
            if r.items.len() < n {
                return false;
            }
        }
        if let Some(min) = self.min_total {
            if r.total < min {
                return false;
            }
        }
        true
    }

    /// Stream the matching receipts in `(customer, date)` order.
    pub fn scan<'a>(&'a self, store: &'a ReceiptStore) -> impl Iterator<Item = ReceiptRef<'a>> {
        // With a customer filter, walk only those customers' row ranges.
        #[allow(clippy::single_range_in_vec_init)] // one Range element intended
        let rows: Vec<std::ops::Range<usize>> = match &self.customers {
            Some(ids) => ids
                .iter()
                .filter_map(|&id| store.customer_rows(id).ok())
                .collect(),
            None => vec![0..store.num_receipts()],
        };
        rows.into_iter()
            .flatten()
            .map(move |row| store.receipt(row).expect("row within range"))
            .filter(move |r| self.matches(r))
    }

    /// Count the matching receipts.
    pub fn count(&self, store: &ReceiptStore) -> usize {
        self.scan(store).count()
    }

    /// Materialize the matching receipts into a new store.
    pub fn materialize(&self, store: &ReceiptStore) -> ReceiptStore {
        let mut builder = ReceiptStoreBuilder::new();
        for r in self.scan(store) {
            builder.push(r.to_owned());
        }
        builder.build()
    }

    /// Total spend across matching receipts.
    pub fn total_spend(&self, store: &ReceiptStore) -> Cents {
        self.scan(store).map(|r| r.total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_types::{Basket, Receipt};

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn store() -> ReceiptStore {
        let mut b = ReceiptStoreBuilder::new();
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 5, 2),
            Basket::from_raw(&[1, 2]),
            Cents(900),
        ));
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 6, 20),
            Basket::from_raw(&[2, 3, 4]),
            Cents(1500),
        ));
        b.push(Receipt::new(
            CustomerId::new(2),
            d(2012, 5, 15),
            Basket::from_raw(&[5]),
            Cents(300),
        ));
        b.push(Receipt::new(
            CustomerId::new(3),
            d(2012, 7, 1),
            Basket::from_raw(&[1]),
            Cents(50),
        ));
        b.build()
    }

    #[test]
    fn unfiltered_matches_all() {
        let s = store();
        assert_eq!(Query::new().count(&s), 4);
        assert_eq!(Query::new().total_spend(&s), Cents(2750));
    }

    #[test]
    fn date_range_half_open() {
        let s = store();
        let q = Query::new().from(d(2012, 5, 15)).until(d(2012, 7, 1));
        let dates: Vec<Date> = q.scan(&s).map(|r| r.date).collect();
        assert_eq!(dates, vec![d(2012, 6, 20), d(2012, 5, 15)]);
    }

    #[test]
    fn customer_filter_prunes() {
        let s = store();
        let q = Query::new().customers([CustomerId::new(1), CustomerId::new(3)]);
        assert_eq!(q.count(&s), 3);
        // Unknown customers are simply skipped.
        let q2 = Query::new().customers([CustomerId::new(99)]);
        assert_eq!(q2.count(&s), 0);
    }

    #[test]
    fn item_filter() {
        let s = store();
        let q = Query::new().contains_item(ItemId::new(1));
        let customers: Vec<u64> = q.scan(&s).map(|r| r.customer.raw()).collect();
        assert_eq!(customers, vec![1, 3]);
    }

    #[test]
    fn basket_size_and_total() {
        let s = store();
        assert_eq!(Query::new().min_basket_size(2).count(&s), 2);
        assert_eq!(Query::new().min_total(Cents(900)).count(&s), 2);
    }

    #[test]
    fn conjunction() {
        let s = store();
        let q = Query::new()
            .customers([CustomerId::new(1)])
            .from(d(2012, 6, 1))
            .min_basket_size(3);
        let hits: Vec<Date> = q.scan(&s).map(|r| r.date).collect();
        assert_eq!(hits, vec![d(2012, 6, 20)]);
    }

    #[test]
    fn materialize_preserves_invariants() {
        let s = store();
        let sub = Query::new().from(d(2012, 6, 1)).materialize(&s);
        assert_eq!(sub.num_receipts(), 2);
        assert_eq!(sub.num_customers(), 2);
        // The materialized store is itself queryable.
        assert_eq!(Query::new().contains_item(ItemId::new(1)).count(&sub), 1);
    }

    #[test]
    fn empty_result_materializes_empty() {
        let s = store();
        let sub = Query::new().min_total(Cents(10_000)).materialize(&s);
        assert!(sub.is_empty());
    }
}
