//! Columnar receipt storage.
//!
//! Receipts are stored column-wise (customer, date, total, basket offsets,
//! flattened item buffer) and sorted by `(customer, date)`, so the paper's
//! per-customer purchase list `D_i` is a contiguous row range located with
//! one binary search, and full scans touch only the columns they need.
//!
//! The store is immutable once built; [`ReceiptStoreBuilder`] accumulates
//! receipts in any order and sorts on `build`.

use crate::StoreError;
use attrition_types::{Basket, Cents, CustomerId, Date, ItemId, Receipt};
use std::ops::Range;

/// A borrowed view of one stored receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiptRef<'a> {
    /// The purchasing customer.
    pub customer: CustomerId,
    /// Trip date.
    pub date: Date,
    /// Total paid.
    pub total: Cents,
    /// Sorted distinct items of the basket.
    pub items: &'a [ItemId],
}

impl ReceiptRef<'_> {
    /// Materialize into an owned [`Receipt`].
    pub fn to_owned(&self) -> Receipt {
        Receipt::new(
            self.customer,
            self.date,
            Basket::new(self.items.to_vec()),
            self.total,
        )
    }
}

/// Immutable, columnar, `(customer, date)`-sorted receipt store.
#[derive(Debug, Clone, Default)]
pub struct ReceiptStore {
    customers: Vec<CustomerId>,
    dates: Vec<Date>,
    totals: Vec<Cents>,
    /// `basket_offsets[r]..basket_offsets[r+1]` indexes `items` for row `r`.
    basket_offsets: Vec<u32>,
    items: Vec<ItemId>,
    /// One entry per distinct customer: `(id, row range)`, sorted by id.
    customer_index: Vec<(CustomerId, Range<u32>)>,
}

impl ReceiptStore {
    /// Number of receipts.
    #[inline]
    pub fn num_receipts(&self) -> usize {
        self.customers.len()
    }

    /// True when the store holds no receipts.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.customers.is_empty()
    }

    /// Number of distinct customers.
    #[inline]
    pub fn num_customers(&self) -> usize {
        self.customer_index.len()
    }

    /// Total number of item occurrences across all baskets.
    #[inline]
    pub fn num_item_occurrences(&self) -> usize {
        self.items.len()
    }

    /// The receipt at a row.
    pub fn receipt(&self, row: usize) -> Result<ReceiptRef<'_>, StoreError> {
        if row >= self.customers.len() {
            return Err(StoreError::RowOutOfRange {
                row,
                len: self.customers.len(),
            });
        }
        let lo = self.basket_offsets[row] as usize;
        let hi = self.basket_offsets[row + 1] as usize;
        Ok(ReceiptRef {
            customer: self.customers[row],
            date: self.dates[row],
            total: self.totals[row],
            items: &self.items[lo..hi],
        })
    }

    /// Iterate over all receipts in `(customer, date)` order.
    pub fn receipts(&self) -> impl Iterator<Item = ReceiptRef<'_>> {
        (0..self.num_receipts()).map(move |r| self.receipt(r).expect("row in range"))
    }

    /// The distinct customers, ascending.
    pub fn customers(&self) -> impl Iterator<Item = CustomerId> + '_ {
        self.customer_index.iter().map(|(id, _)| *id)
    }

    /// Row range of one customer's receipts (chronological), or an error if
    /// the customer has none.
    pub fn customer_rows(&self, customer: CustomerId) -> Result<Range<usize>, StoreError> {
        self.customer_index
            .binary_search_by_key(&customer, |(id, _)| *id)
            .map(|pos| {
                let r = &self.customer_index[pos].1;
                r.start as usize..r.end as usize
            })
            .map_err(|_| StoreError::UnknownCustomer(customer.raw()))
    }

    /// True if the customer has at least one receipt.
    pub fn contains_customer(&self, customer: CustomerId) -> bool {
        self.customer_index
            .binary_search_by_key(&customer, |(id, _)| *id)
            .is_ok()
    }

    /// Chronological receipts of one customer (`D_i` in the paper).
    pub fn customer_receipts(
        &self,
        customer: CustomerId,
    ) -> Result<impl Iterator<Item = ReceiptRef<'_>>, StoreError> {
        let rows = self.customer_rows(customer)?;
        Ok(rows.map(move |r| self.receipt(r).expect("row in range")))
    }

    /// Earliest and latest receipt dates, or `None` when empty.
    pub fn date_range(&self) -> Option<(Date, Date)> {
        // Dates are sorted only within a customer, so scan.
        let mut it = self.dates.iter();
        let first = *it.next()?;
        let (mut lo, mut hi) = (first, first);
        for &d in it {
            lo = lo.min(d);
            hi = hi.max(d);
        }
        Some((lo, hi))
    }

    /// Receipts (any customer) with `from <= date < to`.
    pub fn scan_date_range(&self, from: Date, to: Date) -> impl Iterator<Item = ReceiptRef<'_>> {
        self.receipts()
            .filter(move |r| r.date >= from && r.date < to)
    }

    /// The largest item id present, or `None` when no items were stored.
    /// Useful to size dense per-item arrays.
    pub fn max_item_id(&self) -> Option<ItemId> {
        self.items.iter().copied().max()
    }

    /// Approximate resident bytes of the columnar payload (not counting
    /// allocator overhead). For capacity planning and the scalability
    /// experiment.
    pub fn payload_bytes(&self) -> usize {
        self.customers.len() * std::mem::size_of::<CustomerId>()
            + self.dates.len() * std::mem::size_of::<Date>()
            + self.totals.len() * std::mem::size_of::<Cents>()
            + self.basket_offsets.len() * std::mem::size_of::<u32>()
            + self.items.len() * std::mem::size_of::<ItemId>()
            + self.customer_index.len() * std::mem::size_of::<(CustomerId, Range<u32>)>()
    }
}

/// Accumulates receipts (in any order) and builds a sorted [`ReceiptStore`].
#[derive(Debug, Default)]
pub struct ReceiptStoreBuilder {
    receipts: Vec<Receipt>,
}

impl ReceiptStoreBuilder {
    /// Create an empty builder.
    pub fn new() -> ReceiptStoreBuilder {
        ReceiptStoreBuilder::default()
    }

    /// Create a builder expecting roughly `n` receipts.
    pub fn with_capacity(n: usize) -> ReceiptStoreBuilder {
        ReceiptStoreBuilder {
            receipts: Vec::with_capacity(n),
        }
    }

    /// Add one receipt.
    pub fn push(&mut self, receipt: Receipt) -> &mut ReceiptStoreBuilder {
        self.receipts.push(receipt);
        self
    }

    /// Number of receipts accumulated so far.
    pub fn len(&self) -> usize {
        self.receipts.len()
    }

    /// True when no receipts have been added.
    pub fn is_empty(&self) -> bool {
        self.receipts.is_empty()
    }

    /// Sort by `(customer, date)` and freeze into a store.
    ///
    /// Receipts of one customer on the same date keep their insertion
    /// order (stable sort) — the dataset has day-resolution timestamps, so
    /// same-day trips are legitimate.
    pub fn build(mut self) -> ReceiptStore {
        self.receipts
            .sort_by(|a, b| a.customer.cmp(&b.customer).then(a.date.cmp(&b.date)));
        let n = self.receipts.len();
        let mut store = ReceiptStore {
            customers: Vec::with_capacity(n),
            dates: Vec::with_capacity(n),
            totals: Vec::with_capacity(n),
            basket_offsets: Vec::with_capacity(n + 1),
            items: Vec::new(),
            customer_index: Vec::new(),
        };
        store.basket_offsets.push(0);
        for r in &self.receipts {
            store.customers.push(r.customer);
            store.dates.push(r.date);
            store.totals.push(r.total);
            store.items.extend(r.basket.iter());
            store.basket_offsets.push(store.items.len() as u32);
        }
        // Build the customer index from the sorted customer column.
        let mut row = 0u32;
        while (row as usize) < store.customers.len() {
            let id = store.customers[row as usize];
            let start = row;
            while (row as usize) < store.customers.len() && store.customers[row as usize] == id {
                row += 1;
            }
            store.customer_index.push((id, start..row));
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn receipt(cust: u64, date: Date, items: &[u32], cents: i64) -> Receipt {
        Receipt::new(
            CustomerId::new(cust),
            date,
            Basket::from_raw(items),
            Cents(cents),
        )
    }

    fn sample() -> ReceiptStore {
        let mut b = ReceiptStoreBuilder::new();
        // Deliberately unsorted input.
        b.push(receipt(2, d(2012, 6, 1), &[5, 6], 700));
        b.push(receipt(1, d(2012, 5, 20), &[1, 2, 3], 1500));
        b.push(receipt(1, d(2012, 5, 2), &[1, 2], 900));
        b.push(receipt(2, d(2012, 5, 15), &[5], 300));
        b.push(receipt(1, d(2012, 7, 4), &[2, 4], 800));
        b.build()
    }

    #[test]
    fn sorted_by_customer_then_date() {
        let s = sample();
        let rows: Vec<(u64, Date)> = s.receipts().map(|r| (r.customer.raw(), r.date)).collect();
        assert_eq!(
            rows,
            vec![
                (1, d(2012, 5, 2)),
                (1, d(2012, 5, 20)),
                (1, d(2012, 7, 4)),
                (2, d(2012, 5, 15)),
                (2, d(2012, 6, 1)),
            ]
        );
    }

    #[test]
    fn counts() {
        let s = sample();
        assert_eq!(s.num_receipts(), 5);
        assert_eq!(s.num_customers(), 2);
        assert_eq!(s.num_item_occurrences(), 10);
        assert!(!s.is_empty());
    }

    #[test]
    fn customer_rows_and_receipts() {
        let s = sample();
        assert_eq!(s.customer_rows(CustomerId::new(1)).unwrap(), 0..3);
        assert_eq!(s.customer_rows(CustomerId::new(2)).unwrap(), 3..5);
        assert!(matches!(
            s.customer_rows(CustomerId::new(99)),
            Err(StoreError::UnknownCustomer(99))
        ));
        let dates: Vec<Date> = s
            .customer_receipts(CustomerId::new(1))
            .unwrap()
            .map(|r| r.date)
            .collect();
        assert_eq!(dates, vec![d(2012, 5, 2), d(2012, 5, 20), d(2012, 7, 4)]);
    }

    #[test]
    fn contains_customer() {
        let s = sample();
        assert!(s.contains_customer(CustomerId::new(1)));
        assert!(!s.contains_customer(CustomerId::new(3)));
    }

    #[test]
    fn receipt_contents() {
        let s = sample();
        let r = s.receipt(0).unwrap();
        assert_eq!(r.customer, CustomerId::new(1));
        assert_eq!(r.items, &[ItemId::new(1), ItemId::new(2)]);
        assert_eq!(r.total, Cents(900));
        let owned = r.to_owned();
        assert_eq!(owned.basket.len(), 2);
    }

    #[test]
    fn receipt_out_of_range() {
        let s = sample();
        assert!(matches!(
            s.receipt(5),
            Err(StoreError::RowOutOfRange { row: 5, len: 5 })
        ));
    }

    #[test]
    fn customers_listing() {
        let s = sample();
        let ids: Vec<u64> = s.customers().map(|c| c.raw()).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn date_range() {
        let s = sample();
        assert_eq!(s.date_range(), Some((d(2012, 5, 2), d(2012, 7, 4))));
        assert_eq!(ReceiptStoreBuilder::new().build().date_range(), None);
    }

    #[test]
    fn scan_date_range_half_open() {
        let s = sample();
        let n = s.scan_date_range(d(2012, 5, 15), d(2012, 6, 1)).count();
        assert_eq!(n, 2); // May 15 and May 20; June 1 excluded
    }

    #[test]
    fn empty_store() {
        let s = ReceiptStoreBuilder::new().build();
        assert!(s.is_empty());
        assert_eq!(s.num_customers(), 0);
        assert_eq!(s.receipts().count(), 0);
        assert_eq!(s.max_item_id(), None);
    }

    #[test]
    fn max_item_id() {
        let s = sample();
        assert_eq!(s.max_item_id(), Some(ItemId::new(6)));
    }

    #[test]
    fn same_day_trips_kept() {
        let mut b = ReceiptStoreBuilder::new();
        b.push(receipt(1, d(2012, 5, 2), &[1], 100));
        b.push(receipt(1, d(2012, 5, 2), &[2], 200));
        let s = b.build();
        assert_eq!(s.num_receipts(), 2);
        let totals: Vec<Cents> = s
            .customer_receipts(CustomerId::new(1))
            .unwrap()
            .map(|r| r.total)
            .collect();
        assert_eq!(totals, vec![Cents(100), Cents(200)]);
    }

    #[test]
    fn builder_len() {
        let mut b = ReceiptStoreBuilder::with_capacity(4);
        assert!(b.is_empty());
        b.push(receipt(1, d(2012, 5, 2), &[1], 100));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn payload_bytes_positive() {
        assert!(sample().payload_bytes() > 0);
    }
}
