//! Chronological replay of a store.
//!
//! The store is `(customer, date)`-sorted — ideal for per-customer
//! analysis, wrong for *streaming*: the monitor wants receipts in the
//! order a till would emit them, `(date, customer)`. [`chronological`]
//! produces that order with one index sort (no receipt copying); it's
//! what the `streaming_monitor` example and the CLI `monitor` command
//! replay.

use crate::{ReceiptRef, ReceiptStore};

/// Iterate over all receipts in `(date, customer, insertion)` order.
pub fn chronological(store: &ReceiptStore) -> impl Iterator<Item = ReceiptRef<'_>> {
    let mut rows: Vec<usize> = (0..store.num_receipts()).collect();
    // Stable sort by date only: rows are already customer-then-date
    // sorted, so equal dates keep ascending customer order per date.
    rows.sort_by_key(|&row| store.receipt(row).expect("row in range").date);
    rows.into_iter()
        .map(move |row| store.receipt(row).expect("row in range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReceiptStoreBuilder;
    use attrition_types::{Basket, Cents, CustomerId, Date, Receipt};

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    #[test]
    fn dates_ascend_across_customers() {
        let mut b = ReceiptStoreBuilder::new();
        b.push(Receipt::new(
            CustomerId::new(2),
            d(2012, 5, 1),
            Basket::from_raw(&[1]),
            Cents(1),
        ));
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 5, 3),
            Basket::from_raw(&[2]),
            Cents(1),
        ));
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 5, 1),
            Basket::from_raw(&[3]),
            Cents(1),
        ));
        let store = b.build();
        let order: Vec<(Date, u64)> = chronological(&store)
            .map(|r| (r.date, r.customer.raw()))
            .collect();
        assert_eq!(
            order,
            vec![(d(2012, 5, 1), 1), (d(2012, 5, 1), 2), (d(2012, 5, 3), 1),]
        );
    }

    #[test]
    fn covers_every_receipt_exactly_once() {
        let mut b = ReceiptStoreBuilder::new();
        for c in 0..5u64 {
            for day in 0..4 {
                b.push(Receipt::new(
                    CustomerId::new(c),
                    d(2012, 5, 1) + day * 3,
                    Basket::from_raw(&[c as u32]),
                    Cents(1),
                ));
            }
        }
        let store = b.build();
        assert_eq!(chronological(&store).count(), 20);
        let mut last: Option<Date> = None;
        for r in chronological(&store) {
            if let Some(prev) = last {
                assert!(r.date >= prev, "dates went backwards");
            }
            last = Some(r.date);
        }
    }

    #[test]
    fn empty_store() {
        let store = ReceiptStoreBuilder::new().build();
        assert_eq!(chronological(&store).count(), 0);
    }
}
