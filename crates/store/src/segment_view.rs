//! Projection of product-level receipts onto taxonomy segments.
//!
//! The paper abstracts its 4M products into 3,388 segments before modeling
//! ("A taxonomy is also provided that enables abstracting products in
//! segments"). [`project_to_segments`] rewrites a store so that each
//! basket contains segment ids (as `ItemId`s) instead of product ids —
//! after which every downstream model runs unchanged at segment
//! granularity. The granularity ablation compares both levels.

use crate::{ReceiptStore, ReceiptStoreBuilder, StoreError};
use attrition_types::{Basket, ItemId, Receipt, Taxonomy};

/// Rewrite every basket of `store`, replacing each product id by its
/// segment id (re-encoded as an [`ItemId`]). Duplicate segments within a
/// basket collapse (baskets are sets). Receipt dates, customers and totals
/// are preserved.
///
/// Fails with [`StoreError::Type`] if a basket references a product the
/// taxonomy does not know.
pub fn project_to_segments(
    store: &ReceiptStore,
    taxonomy: &Taxonomy,
) -> Result<ReceiptStore, StoreError> {
    let mut builder = ReceiptStoreBuilder::with_capacity(store.num_receipts());
    for r in store.receipts() {
        let mut seg_items = Vec::with_capacity(r.items.len());
        for &item in r.items {
            let seg = taxonomy.segment_of(item)?;
            seg_items.push(ItemId::new(seg.raw()));
        }
        builder.push(Receipt::new(
            r.customer,
            r.date,
            Basket::new(seg_items),
            r.total,
        ));
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_types::{Cents, CustomerId, Date, TaxonomyBuilder};

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn taxonomy() -> Taxonomy {
        let mut t = TaxonomyBuilder::new();
        let coffee = t.add_segment("coffee");
        let milk = t.add_segment("milk");
        t.add_product(coffee, "arabica", Cents(400)).unwrap(); // item 0
        t.add_product(coffee, "robusta", Cents(300)).unwrap(); // item 1
        t.add_product(milk, "whole", Cents(100)).unwrap(); // item 2
        t.build()
    }

    fn store() -> ReceiptStore {
        let mut b = ReceiptStoreBuilder::new();
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 5, 2),
            Basket::from_raw(&[0, 1, 2]),
            Cents(800),
        ));
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 5, 9),
            Basket::from_raw(&[1]),
            Cents(300),
        ));
        b.build()
    }

    #[test]
    fn products_collapse_to_segments() {
        let projected = project_to_segments(&store(), &taxonomy()).unwrap();
        let first = projected.receipt(0).unwrap();
        // Items 0 and 1 are both "coffee" (segment 0); item 2 is milk (1).
        assert_eq!(first.items, &[ItemId::new(0), ItemId::new(1)]);
        let second = projected.receipt(1).unwrap();
        assert_eq!(second.items, &[ItemId::new(0)]);
    }

    #[test]
    fn metadata_preserved() {
        let projected = project_to_segments(&store(), &taxonomy()).unwrap();
        assert_eq!(projected.num_receipts(), 2);
        let r = projected.receipt(0).unwrap();
        assert_eq!(r.customer, CustomerId::new(1));
        assert_eq!(r.date, d(2012, 5, 2));
        assert_eq!(r.total, Cents(800));
    }

    #[test]
    fn unknown_product_fails() {
        let mut b = ReceiptStoreBuilder::new();
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 5, 2),
            Basket::from_raw(&[99]),
            Cents(100),
        ));
        let err = project_to_segments(&b.build(), &taxonomy()).unwrap_err();
        assert!(matches!(err, StoreError::Type(_)));
    }

    #[test]
    fn empty_store_projects_to_empty() {
        let s = ReceiptStoreBuilder::new().build();
        let projected = project_to_segments(&s, &taxonomy()).unwrap();
        assert!(projected.is_empty());
    }
}
