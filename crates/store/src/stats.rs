//! Dataset description statistics.
//!
//! Section 3 of the paper describes its dataset as: receipts of 6 million
//! customers, May 2012 → August 2014, 4 million products grouped into
//! 3,388 segments. [`DatasetStats`] computes the same description (plus
//! basket-size and trip-rate summaries) for any store; the `dataset_stats`
//! experiment binary prints it next to the paper's numbers.

use crate::ReceiptStore;
use attrition_types::{Cents, Date, Taxonomy};
use attrition_util::stats::Summary;
use attrition_util::Table;
use std::collections::HashSet;
use std::fmt;

/// Summary statistics of a receipt dataset.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Distinct customers.
    pub customers: usize,
    /// Number of receipts.
    pub receipts: usize,
    /// Distinct items appearing in baskets.
    pub distinct_items: usize,
    /// Distinct segments (when a taxonomy is supplied).
    pub distinct_segments: Option<usize>,
    /// First and last receipt date.
    pub date_range: Option<(Date, Date)>,
    /// Observation span in whole months (inclusive of partial end month).
    pub span_months: u32,
    /// Basket size distribution.
    pub basket_size: Summary,
    /// Receipts per customer distribution.
    pub trips_per_customer: Summary,
    /// Total revenue.
    pub revenue: Cents,
}

impl DatasetStats {
    /// Compute statistics over `store`; pass the taxonomy to also count
    /// the distinct segments touched.
    pub fn compute(store: &ReceiptStore, taxonomy: Option<&Taxonomy>) -> DatasetStats {
        let mut items: HashSet<u32> = HashSet::new();
        let mut segments: HashSet<u32> = HashSet::new();
        let mut basket_sizes: Vec<f64> = Vec::with_capacity(store.num_receipts());
        let mut revenue = Cents::ZERO;
        for r in store.receipts() {
            basket_sizes.push(r.items.len() as f64);
            revenue += r.total;
            for &item in r.items {
                items.insert(item.raw());
                if let Some(t) = taxonomy {
                    if let Ok(seg) = t.segment_of(item) {
                        segments.insert(seg.raw());
                    }
                }
            }
        }
        let trips: Vec<f64> = store
            .customers()
            .map(|c| {
                store
                    .customer_rows(c)
                    .map(|r| r.len() as f64)
                    .unwrap_or(0.0)
            })
            .collect();
        let date_range = store.date_range();
        let span_months = date_range
            .map(|(lo, hi)| (hi.months_since(lo) + 1).max(0) as u32)
            .unwrap_or(0);
        DatasetStats {
            customers: store.num_customers(),
            receipts: store.num_receipts(),
            distinct_items: items.len(),
            distinct_segments: taxonomy.map(|_| segments.len()),
            date_range,
            span_months,
            basket_size: Summary::of(&basket_sizes),
            trips_per_customer: Summary::of(&trips),
            revenue,
        }
    }

    /// Render as a two-column table.
    pub fn to_table(&self) -> Table {
        use attrition_util::table::fmt_f64;
        let mut t = Table::new(["statistic", "value"]);
        t.row(["customers", &self.customers.to_string()]);
        t.row(["receipts", &self.receipts.to_string()]);
        t.row(["distinct items", &self.distinct_items.to_string()]);
        if let Some(s) = self.distinct_segments {
            t.row(["distinct segments", &s.to_string()]);
        }
        if let Some((lo, hi)) = self.date_range {
            t.row(["first receipt", &lo.to_string()]);
            t.row(["last receipt", &hi.to_string()]);
        }
        t.row(["span (months)", &self.span_months.to_string()]);
        t.row(["mean basket size", &fmt_f64(self.basket_size.mean, 2)]);
        t.row(["median basket size", &fmt_f64(self.basket_size.median, 1)]);
        t.row([
            "mean trips per customer",
            &fmt_f64(self.trips_per_customer.mean, 2),
        ]);
        t.row(["total revenue", &self.revenue.to_string()]);
        t
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReceiptStoreBuilder;
    use attrition_types::{Basket, CustomerId, Receipt, TaxonomyBuilder};

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn store() -> ReceiptStore {
        let mut b = ReceiptStoreBuilder::new();
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 5, 2),
            Basket::from_raw(&[0, 1]),
            Cents(500),
        ));
        b.push(Receipt::new(
            CustomerId::new(1),
            d(2012, 8, 2),
            Basket::from_raw(&[0]),
            Cents(200),
        ));
        b.push(Receipt::new(
            CustomerId::new(2),
            d(2012, 7, 15),
            Basket::from_raw(&[2]),
            Cents(300),
        ));
        b.build()
    }

    fn taxonomy() -> attrition_types::Taxonomy {
        let mut t = TaxonomyBuilder::new();
        let a = t.add_segment("a");
        let b = t.add_segment("b");
        t.add_product(a, "p0", Cents(100)).unwrap();
        t.add_product(a, "p1", Cents(100)).unwrap();
        t.add_product(b, "p2", Cents(100)).unwrap();
        t.build()
    }

    #[test]
    fn counts_and_span() {
        let s = DatasetStats::compute(&store(), None);
        assert_eq!(s.customers, 2);
        assert_eq!(s.receipts, 3);
        assert_eq!(s.distinct_items, 3);
        assert_eq!(s.distinct_segments, None);
        assert_eq!(s.date_range, Some((d(2012, 5, 2), d(2012, 8, 2))));
        assert_eq!(s.span_months, 4); // May..Aug inclusive
        assert_eq!(s.revenue, Cents(1000));
    }

    #[test]
    fn segment_counting() {
        let tax = taxonomy();
        let s = DatasetStats::compute(&store(), Some(&tax));
        assert_eq!(s.distinct_segments, Some(2));
    }

    #[test]
    fn summaries() {
        let s = DatasetStats::compute(&store(), None);
        assert!((s.basket_size.mean - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.trips_per_customer.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_store_stats() {
        let s = DatasetStats::compute(&ReceiptStoreBuilder::new().build(), None);
        assert_eq!(s.customers, 0);
        assert_eq!(s.span_months, 0);
        assert!(s.date_range.is_none());
    }

    #[test]
    fn table_renders() {
        let tax = taxonomy();
        let s = DatasetStats::compute(&store(), Some(&tax));
        let text = s.to_string();
        assert!(text.contains("customers"));
        assert!(text.contains("distinct segments"));
        assert!(text.contains("2012-05-02"));
    }
}
