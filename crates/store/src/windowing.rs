//! The paper's windowed database `D_i^w`.
//!
//! Section 2: *"Let `w` be a window. We divide `D_i` in consecutive non
//! overlapping windows of time span `w` to define the windowed database of
//! customer `i` […] `u_k` is the set of all products bought during window
//! `k`."*
//!
//! [`WindowSpec`] defines the grid (origin + span, in days or calendar
//! months — the paper uses months); [`CustomerWindows`] is one customer's
//! `D_i^w` together with the per-window aggregates the RFM baseline needs
//! (trip count, spend, cumulative last-purchase date); and
//! [`WindowedDatabase`] materializes all customers at once.
//!
//! Two alignments are supported (an explicit design decision, see
//! DESIGN.md): [`WindowAlignment::Global`] anchors every customer on the
//! observation start, which is what the paper's shared "number of months"
//! axis implies; [`WindowAlignment::PerCustomerFirstPurchase`] anchors each
//! customer on their own first trip, which the alignment ablation compares.

use crate::{ReceiptStore, StoreError};
use attrition_types::{Basket, Cents, CustomerId, Date, ItemId, WindowIndex};

/// Span of one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowLength {
    /// A fixed number of days.
    Days(u32),
    /// A number of calendar months (the paper's unit; months have unequal
    /// day counts, so this is not expressible in `Days`).
    Months(u32),
}

/// A window grid: an origin plus a span.
///
/// ```
/// use attrition_store::WindowSpec;
/// use attrition_types::Date;
///
/// // The paper's grid: 2-month windows from May 2012.
/// let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 2);
/// let date = Date::from_ymd(2013, 2, 14).unwrap();
/// assert_eq!(spec.window_of(date).unwrap().raw(), 4); // Jan–Feb 2013
/// assert_eq!(
///     spec.windows_covering(Date::from_ymd(2014, 8, 31).unwrap()),
///     14 // the paper's 28 months
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// First day of window 0.
    pub origin: Date,
    /// Span of every window.
    pub length: WindowLength,
}

impl WindowSpec {
    /// Grid of `m`-calendar-month windows starting at `origin`.
    pub fn months(origin: Date, m: u32) -> WindowSpec {
        assert!(m > 0, "window length must be positive");
        WindowSpec {
            origin,
            length: WindowLength::Months(m),
        }
    }

    /// Grid of `d`-day windows starting at `origin`.
    pub fn days(origin: Date, d: u32) -> WindowSpec {
        assert!(d > 0, "window length must be positive");
        WindowSpec {
            origin,
            length: WindowLength::Days(d),
        }
    }

    /// First day of window `k` (inclusive).
    pub fn window_start(&self, k: u32) -> Date {
        match self.length {
            WindowLength::Days(d) => self.origin + (k * d) as i32,
            WindowLength::Months(m) => self.origin.add_months((k * m) as i32),
        }
    }

    /// First day *after* window `k` (exclusive end).
    pub fn window_end(&self, k: u32) -> Date {
        self.window_start(k + 1)
    }

    /// The window containing `date`, or `None` if `date` precedes the
    /// origin.
    pub fn window_of(&self, date: Date) -> Option<WindowIndex> {
        if date < self.origin {
            return None;
        }
        let mut k = match self.length {
            WindowLength::Days(d) => (date.days_since(self.origin) as u32) / d,
            WindowLength::Months(m) => {
                // Month arithmetic: the quotient is exact when the origin is
                // the 1st; otherwise correct by at most one step.
                (date.months_since(self.origin).max(0) as u32) / m
            }
        };
        while date < self.window_start(k) {
            k -= 1;
        }
        while date >= self.window_end(k) {
            k += 1;
        }
        Some(WindowIndex::new(k))
    }

    /// Number of windows needed to cover every date in `[origin, last]`
    /// (`0` when `last` precedes the origin).
    pub fn windows_covering(&self, last: Date) -> u32 {
        match self.window_of(last) {
            Some(k) => k.raw() + 1,
            None => 0,
        }
    }
}

/// One customer's windowed database plus per-window aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomerWindows {
    /// The customer.
    pub customer: CustomerId,
    /// `u_k`: the set of all products bought during window `k`. Windows
    /// with no shopping trip hold an empty basket.
    pub baskets: Vec<Basket>,
    /// Number of shopping trips in each window.
    pub trips: Vec<u32>,
    /// Total spend in each window.
    pub spend: Vec<Cents>,
    /// Date of the customer's most recent trip at or before the end of
    /// each window (`None` until the first trip). Cumulative — used for
    /// the RFM recency feature.
    pub last_purchase: Vec<Option<Date>>,
    /// Grid the windows were computed on (after alignment resolution).
    pub spec: WindowSpec,
}

impl CustomerWindows {
    /// Number of windows materialized.
    pub fn num_windows(&self) -> usize {
        self.baskets.len()
    }

    /// `u_k`, or `None` beyond the horizon.
    pub fn basket(&self, k: WindowIndex) -> Option<&Basket> {
        self.baskets.get(k.index())
    }

    /// All distinct items the customer ever bought within the horizon.
    pub fn vocabulary(&self) -> Basket {
        let mut all: Vec<ItemId> = Vec::new();
        for b in &self.baskets {
            all.extend(b.iter());
        }
        Basket::new(all)
    }

    /// Build from a chronological receipt iterator.
    ///
    /// `n_windows` fixes the horizon; receipts outside `[origin,
    /// window_end(n_windows-1))` are ignored.
    pub fn from_receipts<'a>(
        customer: CustomerId,
        receipts: impl Iterator<Item = crate::ReceiptRef<'a>>,
        spec: WindowSpec,
        n_windows: u32,
    ) -> CustomerWindows {
        let n = n_windows as usize;
        let mut item_sets: Vec<Vec<ItemId>> = vec![Vec::new(); n];
        let mut trips = vec![0u32; n];
        let mut spend = vec![Cents::ZERO; n];
        // Last trip date per window (then made cumulative below).
        let mut last_in_window: Vec<Option<Date>> = vec![None; n];
        for r in receipts {
            let Some(k) = spec.window_of(r.date) else {
                continue;
            };
            let k = k.index();
            if k >= n {
                continue;
            }
            item_sets[k].extend_from_slice(r.items);
            trips[k] += 1;
            spend[k] += r.total;
            last_in_window[k] = Some(match last_in_window[k] {
                Some(d) => d.max(r.date),
                None => r.date,
            });
        }
        let mut last_purchase = vec![None; n];
        let mut running: Option<Date> = None;
        for k in 0..n {
            if let Some(d) = last_in_window[k] {
                running = Some(running.map_or(d, |r| r.max(d)));
            }
            last_purchase[k] = running;
        }
        CustomerWindows {
            customer,
            baskets: item_sets.into_iter().map(Basket::new).collect(),
            trips,
            spend,
            last_purchase,
            spec,
        }
    }
}

/// How to anchor the window grid per customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowAlignment {
    /// All customers share the grid anchored at the spec origin (the
    /// paper's setting: a common "number of months" axis).
    #[default]
    Global,
    /// Each customer's grid is anchored at their own first purchase date.
    /// Their windows still use the spec's length and are truncated at the
    /// global horizon.
    PerCustomerFirstPurchase,
}

/// All customers' windowed databases over a common horizon.
#[derive(Debug, Clone)]
pub struct WindowedDatabase {
    /// The grid (global origin + span).
    pub spec: WindowSpec,
    /// Number of windows in the horizon (for globally aligned customers).
    pub num_windows: u32,
    /// Alignment used.
    pub alignment: WindowAlignment,
    customers: Vec<CustomerWindows>,
}

impl WindowedDatabase {
    /// Window every customer of `store` on `spec` with `n_windows`
    /// horizon windows.
    pub fn from_store(
        store: &ReceiptStore,
        spec: WindowSpec,
        n_windows: u32,
        alignment: WindowAlignment,
    ) -> WindowedDatabase {
        let _stage = attrition_obs::Stage::enter("windowing");
        let horizon_end = spec.window_end(n_windows.saturating_sub(1));
        let customers = store
            .customers()
            .map(|id| {
                let receipts = store
                    .customer_receipts(id)
                    .expect("customer listed by the store");
                match alignment {
                    WindowAlignment::Global => {
                        CustomerWindows::from_receipts(id, receipts, spec, n_windows)
                    }
                    WindowAlignment::PerCustomerFirstPurchase => {
                        let mut receipts = receipts.peekable();
                        let first = receipts.peek().map(|r| r.date);
                        match first {
                            Some(first) if first < horizon_end => {
                                let own = WindowSpec {
                                    origin: first.max(spec.origin),
                                    length: spec.length,
                                };
                                let n = own.windows_covering(horizon_end + -1);
                                CustomerWindows::from_receipts(id, receipts, own, n)
                            }
                            _ => CustomerWindows::from_receipts(id, receipts, spec, 0),
                        }
                    }
                }
            })
            .collect::<Vec<_>>();
        if attrition_obs::enabled() {
            attrition_obs::global()
                .counter("store.customers_windowed")
                .add(customers.len() as u64);
        }
        WindowedDatabase {
            spec,
            num_windows: n_windows,
            alignment,
            customers,
        }
    }

    /// Convenience: derive the horizon from the store's own date range.
    pub fn covering_store(
        store: &ReceiptStore,
        spec: WindowSpec,
        alignment: WindowAlignment,
    ) -> WindowedDatabase {
        let n = store
            .date_range()
            .map(|(_, last)| spec.windows_covering(last))
            .unwrap_or(0);
        WindowedDatabase::from_store(store, spec, n, alignment)
    }

    /// Per-customer windowed views, in customer-id order.
    pub fn customers(&self) -> &[CustomerWindows] {
        &self.customers
    }

    /// Number of customers.
    pub fn num_customers(&self) -> usize {
        self.customers.len()
    }

    /// One customer's view.
    pub fn customer(&self, id: CustomerId) -> Result<&CustomerWindows, StoreError> {
        self.customers
            .binary_search_by_key(&id, |c| c.customer)
            .map(|pos| &self.customers[pos])
            .map_err(|_| StoreError::UnknownCustomer(id.raw()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReceiptStoreBuilder;
    use attrition_types::Receipt;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn receipt(cust: u64, date: Date, items: &[u32], cents: i64) -> Receipt {
        Receipt::new(
            CustomerId::new(cust),
            date,
            Basket::from_raw(items),
            Cents(cents),
        )
    }

    #[test]
    fn monthly_grid_bounds() {
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        assert_eq!(spec.window_start(0), d(2012, 5, 1));
        assert_eq!(spec.window_end(0), d(2012, 7, 1));
        assert_eq!(spec.window_start(3), d(2012, 11, 1));
        // Paper: 28 months → 14 two-month windows.
        assert_eq!(spec.windows_covering(d(2014, 8, 31)), 14);
    }

    #[test]
    fn daily_grid_bounds() {
        let spec = WindowSpec::days(d(2012, 5, 1), 7);
        assert_eq!(spec.window_start(1), d(2012, 5, 8));
        assert_eq!(spec.window_of(d(2012, 5, 7)).unwrap().raw(), 0);
        assert_eq!(spec.window_of(d(2012, 5, 8)).unwrap().raw(), 1);
    }

    #[test]
    fn window_of_edges() {
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        assert_eq!(spec.window_of(d(2012, 4, 30)), None);
        assert_eq!(spec.window_of(d(2012, 5, 1)).unwrap().raw(), 0);
        assert_eq!(spec.window_of(d(2012, 6, 30)).unwrap().raw(), 0);
        assert_eq!(spec.window_of(d(2012, 7, 1)).unwrap().raw(), 1);
        assert_eq!(spec.window_of(d(2014, 8, 31)).unwrap().raw(), 13);
    }

    #[test]
    fn window_of_mid_month_origin() {
        // Origins not on the 1st still partition correctly.
        let spec = WindowSpec::months(d(2012, 5, 15), 1);
        assert_eq!(spec.window_of(d(2012, 5, 14)), None);
        assert_eq!(spec.window_of(d(2012, 6, 14)).unwrap().raw(), 0);
        assert_eq!(spec.window_of(d(2012, 6, 15)).unwrap().raw(), 1);
    }

    #[test]
    fn windows_covering_before_origin() {
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        assert_eq!(spec.windows_covering(d(2012, 4, 1)), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        WindowSpec::months(d(2012, 5, 1), 0);
    }

    fn sample_store() -> ReceiptStore {
        let mut b = ReceiptStoreBuilder::new();
        // Customer 1: trips in windows 0, 0, 2 (2-month windows from May).
        b.push(receipt(1, d(2012, 5, 3), &[1, 2], 500));
        b.push(receipt(1, d(2012, 6, 20), &[2, 3], 700));
        b.push(receipt(1, d(2012, 9, 10), &[1], 300));
        // Customer 2: single trip in window 1.
        b.push(receipt(2, d(2012, 8, 1), &[9], 900));
        b.build()
    }

    #[test]
    fn customer_windows_unions() {
        let store = sample_store();
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        let db = WindowedDatabase::from_store(&store, spec, 3, WindowAlignment::Global);
        let c1 = db.customer(CustomerId::new(1)).unwrap();
        assert_eq!(c1.num_windows(), 3);
        // u_0 = {1,2} ∪ {2,3} = {1,2,3}
        assert_eq!(c1.baskets[0], Basket::from_raw(&[1, 2, 3]));
        assert!(c1.baskets[1].is_empty());
        assert_eq!(c1.baskets[2], Basket::from_raw(&[1]));
        assert_eq!(c1.trips, vec![2, 0, 1]);
        assert_eq!(c1.spend, vec![Cents(1200), Cents::ZERO, Cents(300)]);
        assert_eq!(
            c1.last_purchase,
            vec![
                Some(d(2012, 6, 20)),
                Some(d(2012, 6, 20)),
                Some(d(2012, 9, 10))
            ]
        );
    }

    #[test]
    fn receipts_beyond_horizon_ignored() {
        let store = sample_store();
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        let db = WindowedDatabase::from_store(&store, spec, 1, WindowAlignment::Global);
        let c1 = db.customer(CustomerId::new(1)).unwrap();
        assert_eq!(c1.num_windows(), 1);
        assert_eq!(c1.trips, vec![2]);
    }

    #[test]
    fn unknown_customer_errors() {
        let store = sample_store();
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        let db = WindowedDatabase::from_store(&store, spec, 3, WindowAlignment::Global);
        assert!(db.customer(CustomerId::new(42)).is_err());
    }

    #[test]
    fn covering_store_derives_horizon() {
        let store = sample_store();
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        let db = WindowedDatabase::covering_store(&store, spec, WindowAlignment::Global);
        assert_eq!(db.num_windows, 3); // last receipt 2012-09-10 → window 2
        assert_eq!(db.num_customers(), 2);
    }

    #[test]
    fn per_customer_alignment_shifts_origin() {
        let store = sample_store();
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        let db = WindowedDatabase::from_store(
            &store,
            spec,
            3,
            WindowAlignment::PerCustomerFirstPurchase,
        );
        let c2 = db.customer(CustomerId::new(2)).unwrap();
        // Customer 2's first trip is 2012-08-01, so their window 0 starts
        // there and contains the single trip.
        assert_eq!(c2.spec.origin, d(2012, 8, 1));
        assert_eq!(c2.trips[0], 1);
        assert!(!c2.baskets[0].is_empty());
    }

    #[test]
    fn vocabulary_unions_all_windows() {
        let store = sample_store();
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        let db = WindowedDatabase::from_store(&store, spec, 3, WindowAlignment::Global);
        let c1 = db.customer(CustomerId::new(1)).unwrap();
        assert_eq!(c1.vocabulary(), Basket::from_raw(&[1, 2, 3]));
    }

    #[test]
    fn receipts_before_origin_ignored() {
        let mut b = ReceiptStoreBuilder::new();
        b.push(receipt(1, d(2012, 1, 1), &[7], 100));
        b.push(receipt(1, d(2012, 5, 5), &[8], 100));
        let store = b.build();
        let spec = WindowSpec::months(d(2012, 5, 1), 1);
        let db = WindowedDatabase::from_store(&store, spec, 2, WindowAlignment::Global);
        let c = db.customer(CustomerId::new(1)).unwrap();
        assert_eq!(c.trips, vec![1, 0]);
        assert!(!c.baskets[0].contains(ItemId::new(7)));
    }

    #[test]
    fn empty_store_windowed() {
        let store = ReceiptStoreBuilder::new().build();
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        let db = WindowedDatabase::covering_store(&store, spec, WindowAlignment::Global);
        assert_eq!(db.num_windows, 0);
        assert_eq!(db.num_customers(), 0);
    }

    #[test]
    fn basket_accessor_bounds() {
        let store = sample_store();
        let spec = WindowSpec::months(d(2012, 5, 1), 2);
        let db = WindowedDatabase::from_store(&store, spec, 3, WindowAlignment::Global);
        let c1 = db.customer(CustomerId::new(1)).unwrap();
        assert!(c1.basket(WindowIndex::new(2)).is_some());
        assert!(c1.basket(WindowIndex::new(3)).is_none());
    }
}
