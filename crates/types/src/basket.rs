//! Baskets and receipts.
//!
//! A [`Basket`] is the item *set* of one shopping trip (`b_j ⊂ I` in the
//! paper): sorted, deduplicated, immutable once built. A [`Receipt`] is a
//! basket with its customer, timestamp and monetary total — the unit record
//! of the dataset ("each timestamped customer receipt describes a related
//! basket content").

use crate::{Cents, CustomerId, Date, ItemId};
use std::fmt;

/// A sorted, deduplicated set of items bought in one shopping trip.
///
/// Stored as a sorted `Box<[ItemId]>`: membership is `O(log n)`,
/// intersection/union are linear merges, and the representation is two
/// words + payload (baskets are instantiated in the millions).
///
/// ```
/// use attrition_types::{Basket, ItemId};
/// let a = Basket::from_raw(&[3, 1, 3, 2]); // sorted + deduplicated
/// assert_eq!(a.len(), 3);
/// assert!(a.contains(ItemId::new(2)));
/// let b = Basket::from_raw(&[2, 4]);
/// assert_eq!(a.union(&b).len(), 4);
/// assert_eq!(a.intersection(&b).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Basket {
    items: Box<[ItemId]>,
}

impl Basket {
    /// Build a basket from any collection of items; sorts and deduplicates.
    pub fn new(mut items: Vec<ItemId>) -> Basket {
        items.sort_unstable();
        items.dedup();
        Basket {
            items: items.into_boxed_slice(),
        }
    }

    /// Build from a slice of raw `u32` item ids (convenience for tests and
    /// loaders).
    pub fn from_raw(raw: &[u32]) -> Basket {
        Basket::new(raw.iter().copied().map(ItemId::new).collect())
    }

    /// The empty basket.
    pub fn empty() -> Basket {
        Basket::default()
    }

    /// Number of distinct items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the basket has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test (binary search over the sorted representation).
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Iterate over the items in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.iter().copied()
    }

    /// Set union with another basket (linear merge).
    pub fn union(&self, other: &Basket) -> Basket {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        out.extend_from_slice(&other.items[j..]);
        Basket {
            items: out.into_boxed_slice(),
        }
    }

    /// Set intersection with another basket (linear merge).
    pub fn intersection(&self, other: &Basket) -> Basket {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Basket {
            items: out.into_boxed_slice(),
        }
    }

    /// Items of `self` not present in `other` (linear merge).
    pub fn difference(&self, other: &Basket) -> Basket {
        let mut out = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        Basket {
            items: out.into_boxed_slice(),
        }
    }
}

impl FromIterator<ItemId> for Basket {
    fn from_iter<T: IntoIterator<Item = ItemId>>(iter: T) -> Basket {
        Basket::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Basket {
    type Item = ItemId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ItemId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

impl fmt::Display for Basket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, item) in self.items.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

/// One timestamped shopping trip of one customer, with its monetary total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// The purchasing customer.
    pub customer: CustomerId,
    /// Date of the trip (day resolution, like the paper's dataset).
    pub date: Date,
    /// Distinct items bought.
    pub basket: Basket,
    /// Total amount paid.
    pub total: Cents,
}

impl Receipt {
    /// Construct a receipt.
    pub fn new(customer: CustomerId, date: Date, basket: Basket, total: Cents) -> Receipt {
        Receipt {
            customer,
            date,
            basket,
            total,
        }
    }
}

impl fmt::Display for Receipt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.customer, self.date, self.total, self.basket
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_util::check::{forall, gen_vec};

    fn b(raw: &[u32]) -> Basket {
        Basket::from_raw(raw)
    }

    #[test]
    fn dedup_and_sort_on_build() {
        let basket = b(&[3, 1, 2, 3, 1]);
        assert_eq!(basket.len(), 3);
        assert_eq!(
            basket.items(),
            &[ItemId::new(1), ItemId::new(2), ItemId::new(3)]
        );
    }

    #[test]
    fn membership() {
        let basket = b(&[10, 20, 30]);
        assert!(basket.contains(ItemId::new(20)));
        assert!(!basket.contains(ItemId::new(25)));
        assert!(!Basket::empty().contains(ItemId::new(0)));
    }

    #[test]
    fn empty_basket() {
        let e = Basket::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.to_string(), "{}");
    }

    #[test]
    fn union_merges() {
        assert_eq!(b(&[1, 3]).union(&b(&[2, 3, 4])), b(&[1, 2, 3, 4]));
        assert_eq!(b(&[]).union(&b(&[5])), b(&[5]));
        assert_eq!(b(&[5]).union(&b(&[])), b(&[5]));
    }

    #[test]
    fn intersection_merges() {
        assert_eq!(b(&[1, 2, 3]).intersection(&b(&[2, 3, 4])), b(&[2, 3]));
        assert_eq!(b(&[1]).intersection(&b(&[2])), b(&[]));
    }

    #[test]
    fn difference_merges() {
        assert_eq!(b(&[1, 2, 3]).difference(&b(&[2])), b(&[1, 3]));
        assert_eq!(b(&[1, 2]).difference(&b(&[1, 2])), b(&[]));
        assert_eq!(b(&[1, 2]).difference(&b(&[])), b(&[1, 2]));
    }

    #[test]
    fn from_iterator() {
        let basket: Basket = [ItemId::new(2), ItemId::new(1)].into_iter().collect();
        assert_eq!(basket, b(&[1, 2]));
    }

    #[test]
    fn into_iterator_ref() {
        let basket = b(&[4, 5]);
        let collected: Vec<ItemId> = (&basket).into_iter().collect();
        assert_eq!(collected, vec![ItemId::new(4), ItemId::new(5)]);
    }

    #[test]
    fn display() {
        assert_eq!(b(&[2, 1]).to_string(), "{i1, i2}");
    }

    #[test]
    fn receipt_display() {
        let r = Receipt::new(
            CustomerId::new(9),
            Date::from_ymd(2012, 5, 3).unwrap(),
            b(&[1]),
            Cents(499),
        );
        assert_eq!(r.to_string(), "c9 2012-05-03 4.99 {i1}");
    }

    fn gen_items(rng: &mut attrition_util::Rng) -> Vec<u32> {
        gen_vec(rng, 0, 19, |r| r.u64_below(50) as u32)
    }

    #[test]
    fn union_is_commutative() {
        forall(
            256,
            |rng| (gen_items(rng), gen_items(rng)),
            |(a, bb)| {
                let (x, y) = (b(a), b(bb));
                assert_eq!(x.union(&y), y.union(&x));
            },
        );
    }

    #[test]
    fn intersection_subset_of_both() {
        forall(
            256,
            |rng| (gen_items(rng), gen_items(rng)),
            |(a, bb)| {
                let (x, y) = (b(a), b(bb));
                let inter = x.intersection(&y);
                for item in inter.iter() {
                    assert!(x.contains(item) && y.contains(item));
                }
            },
        );
    }

    #[test]
    fn difference_disjoint_from_rhs() {
        forall(
            256,
            |rng| (gen_items(rng), gen_items(rng)),
            |(a, bb)| {
                let (x, y) = (b(a), b(bb));
                let diff = x.difference(&y);
                for item in diff.iter() {
                    assert!(x.contains(item) && !y.contains(item));
                }
                // difference ∪ intersection == self
                assert_eq!(diff.union(&x.intersection(&y)), x);
            },
        );
    }

    #[test]
    fn items_always_sorted_unique() {
        forall(
            256,
            |rng| gen_vec(rng, 0, 63, |r| r.u64_below(1000) as u32),
            |a| {
                let basket = b(a);
                let items = basket.items();
                for w in items.windows(2) {
                    assert!(w[0] < w[1]);
                }
            },
        );
    }
}
