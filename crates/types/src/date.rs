//! Civil-calendar dates without external dependencies.
//!
//! The paper's dataset spans May 2012 → August 2014 and the windowing model
//! needs nothing more than day-resolution civil dates with month
//! arithmetic. [`Date`] stores a count of days since the proleptic
//! Gregorian epoch 1970-01-01 and converts to/from `(year, month, day)`
//! with Howard Hinnant's `days_from_civil` / `civil_from_days` algorithms,
//! which are exact over the entire `i32` day range used here.

use crate::error::TypeError;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A month of the Gregorian calendar, 1-based like humans write it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Month {
    /// January (1).
    January = 1,
    /// February (2).
    February = 2,
    /// March (3).
    March = 3,
    /// April (4).
    April = 4,
    /// May (5).
    May = 5,
    /// June (6).
    June = 6,
    /// July (7).
    July = 7,
    /// August (8).
    August = 8,
    /// September (9).
    September = 9,
    /// October (10).
    October = 10,
    /// November (11).
    November = 11,
    /// December (12).
    December = 12,
}

impl Month {
    /// All months in calendar order.
    pub const ALL: [Month; 12] = [
        Month::January,
        Month::February,
        Month::March,
        Month::April,
        Month::May,
        Month::June,
        Month::July,
        Month::August,
        Month::September,
        Month::October,
        Month::November,
        Month::December,
    ];

    /// Construct from the 1-based month number.
    pub fn from_number(n: u32) -> Result<Month, TypeError> {
        Month::ALL
            .get((n as usize).wrapping_sub(1))
            .copied()
            .ok_or(TypeError::InvalidMonth(n))
    }

    /// The 1-based month number.
    #[inline]
    pub const fn number(self) -> u32 {
        self as u32
    }

    /// English month name.
    pub const fn name(self) -> &'static str {
        match self {
            Month::January => "January",
            Month::February => "February",
            Month::March => "March",
            Month::April => "April",
            Month::May => "May",
            Month::June => "June",
            Month::July => "July",
            Month::August => "August",
            Month::September => "September",
            Month::October => "October",
            Month::November => "November",
            Month::December => "December",
        }
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A civil date, stored as days since 1970-01-01 (negative before it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    days: i32,
}

/// `days_from_civil` (Hinnant): exact for all representable dates.
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March=0 .. February=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// `civil_from_days` (Hinnant): inverse of [`days_from_civil`].
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month validated on construction"),
    }
}

impl Date {
    /// The Unix epoch, 1970-01-01.
    pub const EPOCH: Date = Date { days: 0 };

    /// Construct from year / month / day-of-month, validating the triple.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Date, TypeError> {
        if !(1..=12).contains(&month) {
            return Err(TypeError::InvalidMonth(month));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(TypeError::InvalidDay { year, month, day });
        }
        Ok(Date {
            days: days_from_civil(year, month, day),
        })
    }

    /// Construct directly from a days-since-epoch count.
    #[inline]
    pub const fn from_days(days: i32) -> Date {
        Date { days }
    }

    /// Days since 1970-01-01 (negative before it).
    #[inline]
    pub const fn days_since_epoch(self) -> i32 {
        self.days
    }

    /// The `(year, month, day)` triple of this date.
    #[inline]
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.days)
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Calendar month.
    pub fn month(self) -> Month {
        Month::from_number(self.ymd().1).expect("civil_from_days yields valid months")
    }

    /// Day of month, 1-based.
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// First day of this date's month.
    pub fn first_of_month(self) -> Date {
        let (y, m, _) = self.ymd();
        Date {
            days: days_from_civil(y, m, 1),
        }
    }

    /// The date `n` whole months later, clamped to the target month's
    /// length (e.g. Jan 31 + 1 month = Feb 28/29). `n` may be negative.
    pub fn add_months(self, n: i32) -> Date {
        let (y, m, d) = self.ymd();
        let zero_based = y as i64 * 12 + (m as i64 - 1) + n as i64;
        let ny = zero_based.div_euclid(12) as i32;
        let nm = (zero_based.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm));
        Date {
            days: days_from_civil(ny, nm, nd),
        }
    }

    /// Number of whole months from `origin` to `self` where both are taken
    /// at month granularity (the day-of-month is ignored). Negative if
    /// `self` is in an earlier month than `origin`.
    pub fn months_since(self, origin: Date) -> i32 {
        let (y1, m1, _) = self.ymd();
        let (y0, m0, _) = origin.ymd();
        (y1 - y0) * 12 + (m1 as i32 - m0 as i32)
    }

    /// Signed number of days from `other` to `self`.
    #[inline]
    pub const fn days_since(self, other: Date) -> i32 {
        self.days - other.days
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse_iso(s: &str) -> Result<Date, TypeError> {
        let err = || TypeError::InvalidDate(s.to_owned());
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let m: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let d: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        Date::from_ymd(y, m, d).map_err(|_| err())
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl Add<i32> for Date {
    type Output = Date;

    /// Add a number of days.
    #[inline]
    fn add(self, rhs: i32) -> Date {
        Date {
            days: self.days + rhs,
        }
    }
}

impl AddAssign<i32> for Date {
    #[inline]
    fn add_assign(&mut self, rhs: i32) {
        self.days += rhs;
    }
}

impl Sub for Date {
    type Output = i32;

    /// Signed number of days between two dates.
    #[inline]
    fn sub(self, rhs: Date) -> i32 {
        self.days - rhs.days
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_util::check::forall;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Date::EPOCH.ymd(), (1970, 1, 1));
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days_since_epoch(), 0);
    }

    #[test]
    fn known_dates() {
        // Paper's observation span.
        let start = Date::from_ymd(2012, 5, 1).unwrap();
        let end = Date::from_ymd(2014, 8, 31).unwrap();
        assert_eq!(start.days_since_epoch(), 15461);
        assert_eq!(end - start, 852);
        assert_eq!(end.months_since(start), 27); // 28 months inclusive
    }

    #[test]
    fn leap_years() {
        assert!(Date::from_ymd(2012, 2, 29).is_ok());
        assert!(Date::from_ymd(2013, 2, 29).is_err());
        assert!(Date::from_ymd(2000, 2, 29).is_ok());
        assert!(Date::from_ymd(1900, 2, 29).is_err());
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(Date::from_ymd(2012, 0, 1).is_err());
        assert!(Date::from_ymd(2012, 13, 1).is_err());
        assert!(Date::from_ymd(2012, 4, 31).is_err());
        assert!(Date::from_ymd(2012, 1, 0).is_err());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let d = Date::from_ymd(2013, 11, 5).unwrap();
        assert_eq!(d.to_string(), "2013-11-05");
        assert_eq!(Date::parse_iso("2013-11-05").unwrap(), d);
        assert!(Date::parse_iso("2013-11").is_err());
        assert!(Date::parse_iso("abcd-ef-gh").is_err());
        assert!(Date::parse_iso("2013-02-30").is_err());
    }

    #[test]
    fn add_months_clamps() {
        let jan31 = Date::from_ymd(2013, 1, 31).unwrap();
        assert_eq!(jan31.add_months(1).ymd(), (2013, 2, 28));
        assert_eq!(jan31.add_months(13).ymd(), (2014, 2, 28));
        let leap = Date::from_ymd(2012, 1, 31).unwrap();
        assert_eq!(leap.add_months(1).ymd(), (2012, 2, 29));
    }

    #[test]
    fn add_months_negative() {
        let mar = Date::from_ymd(2013, 3, 15).unwrap();
        assert_eq!(mar.add_months(-3).ymd(), (2012, 12, 15));
        assert_eq!(mar.add_months(-15).ymd(), (2011, 12, 15));
    }

    #[test]
    fn months_since_ignores_day() {
        let a = Date::from_ymd(2012, 5, 30).unwrap();
        let b = Date::from_ymd(2012, 6, 1).unwrap();
        assert_eq!(b.months_since(a), 1);
        assert_eq!(a.months_since(b), -1);
        assert_eq!(a.months_since(a), 0);
    }

    #[test]
    fn month_enum() {
        assert_eq!(Month::from_number(5).unwrap(), Month::May);
        assert!(Month::from_number(0).is_err());
        assert!(Month::from_number(13).is_err());
        assert_eq!(Month::May.number(), 5);
        assert_eq!(Month::May.to_string(), "May");
        assert_eq!(Month::ALL.len(), 12);
    }

    #[test]
    fn day_arithmetic() {
        let d = Date::from_ymd(2012, 12, 31).unwrap();
        assert_eq!((d + 1).ymd(), (2013, 1, 1));
        let mut e = d;
        e += 32;
        assert_eq!(e.ymd(), (2013, 2, 1));
    }

    #[test]
    fn first_of_month() {
        let d = Date::from_ymd(2014, 8, 23).unwrap();
        assert_eq!(d.first_of_month().ymd(), (2014, 8, 1));
    }

    #[test]
    fn civil_roundtrip() {
        forall(
            512,
            |rng| rng.i64_in(-1_000_000, 999_999) as i32,
            |&days| {
                let d = Date::from_days(days);
                let (y, m, dd) = d.ymd();
                assert_eq!(Date::from_ymd(y, m, dd).unwrap(), d);
            },
        );
    }

    #[test]
    fn ordering_matches_days() {
        forall(
            512,
            |rng| {
                (
                    rng.i64_in(-100_000, 99_999) as i32,
                    rng.i64_in(-100_000, 99_999) as i32,
                )
            },
            |&(a, b)| {
                let da = Date::from_days(a);
                let db = Date::from_days(b);
                assert_eq!(da < db, a < b);
                assert_eq!(da - db, a - b);
            },
        );
    }

    #[test]
    fn add_months_inverse() {
        forall(
            512,
            |rng| {
                (
                    rng.i64_in(-100_000, 99_999) as i32,
                    rng.i64_in(-240, 239) as i32,
                )
            },
            |&(days, n)| {
                let d = Date::from_days(days).first_of_month();
                // On the first of the month, add_months is exactly invertible.
                assert_eq!(d.add_months(n).add_months(-n), d);
                assert_eq!(d.add_months(n).months_since(d), n);
            },
        );
    }
}
