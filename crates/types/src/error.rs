//! Error type for domain-type construction.

use std::fmt;

/// Errors raised when constructing domain values from raw input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Month number outside `1..=12`.
    InvalidMonth(u32),
    /// Day outside the valid range for the given year/month.
    InvalidDay {
        /// Calendar year.
        year: i32,
        /// 1-based month.
        month: u32,
        /// Offending day of month.
        day: u32,
    },
    /// A date string that failed to parse as `YYYY-MM-DD`.
    InvalidDate(String),
    /// An item id referenced but not present in the taxonomy.
    UnknownItem(u32),
    /// A segment id referenced but not present in the taxonomy.
    UnknownSegment(u32),
    /// Attempt to register an item twice in a taxonomy builder.
    DuplicateItem(u32),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidMonth(m) => write!(f, "invalid month number {m} (expected 1..=12)"),
            TypeError::InvalidDay { year, month, day } => {
                write!(f, "invalid day {day} for {year:04}-{month:02}")
            }
            TypeError::InvalidDate(s) => {
                write!(f, "invalid date string {s:?} (expected YYYY-MM-DD)")
            }
            TypeError::UnknownItem(i) => write!(f, "unknown item id {i}"),
            TypeError::UnknownSegment(s) => write!(f, "unknown segment id {s}"),
            TypeError::DuplicateItem(i) => write!(f, "item id {i} registered twice"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TypeError::InvalidMonth(13).to_string(),
            "invalid month number 13 (expected 1..=12)"
        );
        assert_eq!(
            TypeError::InvalidDay {
                year: 2013,
                month: 2,
                day: 30
            }
            .to_string(),
            "invalid day 30 for 2013-02"
        );
        assert!(TypeError::InvalidDate("x".into()).to_string().contains("x"));
        assert!(TypeError::UnknownItem(7).to_string().contains("7"));
        assert!(TypeError::UnknownSegment(7).to_string().contains("7"));
        assert!(TypeError::DuplicateItem(7).to_string().contains("twice"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&TypeError::InvalidMonth(0));
    }
}
