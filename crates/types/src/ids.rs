//! Strongly-typed identifiers.
//!
//! The store and the models index heavily by these ids; they are newtypes
//! over small integers so that a `Vec<T>` indexed by id is the natural
//! representation and accidental cross-use (customer id where an item id is
//! expected) is a compile error.

use std::fmt;

/// Identifier of a purchasable item.
///
/// Depending on the granularity chosen by the caller this is either a
/// concrete product (the paper's dataset has ~4M products) or an abstracted
/// segment (3,388 segments); the models are agnostic. Dense: generated
/// catalogs allocate ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

/// Identifier of a taxonomy segment (product category).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

/// Identifier of a customer. Dense: generated populations allocate `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CustomerId(pub u64);

/// Index of a time window in a windowed database (`k` in the paper).
///
/// Windows are consecutive, non-overlapping and aligned on the observation
/// start, so the index doubles as a position into per-customer window
/// vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowIndex(pub u32);

macro_rules! impl_id {
    ($ty:ident, $inner:ty, $prefix:literal) => {
        impl $ty {
            /// Construct from the raw integer value.
            #[inline]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// The raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// The value as a `usize`, for direct indexing into dense vectors.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $ty {
            #[inline]
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for $inner {
            #[inline]
            fn from(id: $ty) -> $inner {
                id.0
            }
        }
    };
}

impl_id!(ItemId, u32, "i");
impl_id!(SegmentId, u32, "s");
impl_id!(CustomerId, u64, "c");
impl_id!(WindowIndex, u32, "w");

impl WindowIndex {
    /// The window immediately after this one.
    #[inline]
    pub const fn next(self) -> WindowIndex {
        WindowIndex(self.0 + 1)
    }

    /// The window immediately before this one, or `None` at the origin.
    #[inline]
    pub const fn prev(self) -> Option<WindowIndex> {
        match self.0.checked_sub(1) {
            Some(v) => Some(WindowIndex(v)),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn raw_roundtrip() {
        assert_eq!(ItemId::new(7).raw(), 7);
        assert_eq!(SegmentId::new(9).raw(), 9);
        assert_eq!(CustomerId::new(123).raw(), 123);
        assert_eq!(WindowIndex::new(4).raw(), 4);
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(ItemId::new(42).index(), 42usize);
        assert_eq!(CustomerId::new(1 << 40).index(), 1usize << 40);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(ItemId::new(3).to_string(), "i3");
        assert_eq!(SegmentId::new(3).to_string(), "s3");
        assert_eq!(CustomerId::new(3).to_string(), "c3");
        assert_eq!(WindowIndex::new(3).to_string(), "w3");
    }

    #[test]
    fn from_into_roundtrip() {
        let id: ItemId = 5u32.into();
        let raw: u32 = id.into();
        assert_eq!(raw, 5);
    }

    #[test]
    fn ordering_follows_raw_values() {
        assert!(ItemId::new(1) < ItemId::new(2));
        assert!(WindowIndex::new(0) < WindowIndex::new(1));
    }

    #[test]
    fn window_next_prev() {
        let w = WindowIndex::new(3);
        assert_eq!(w.next(), WindowIndex::new(4));
        assert_eq!(w.prev(), Some(WindowIndex::new(2)));
        assert_eq!(WindowIndex::new(0).prev(), None);
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<ItemId> = [ItemId::new(1), ItemId::new(2), ItemId::new(1)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
