//! # attrition-types
//!
//! Domain vocabulary shared by every crate in the `attrition` workspace.
//!
//! The paper ("Understanding Customer Attrition at an Individual Level",
//! EDBT 2016) models a customer's purchases as a chronologically ordered
//! list of `(basket, timestamp)` pairs over a universe of items that are
//! optionally abstracted into *segments* by a taxonomy. This crate provides
//! exactly that vocabulary:
//!
//! * strongly-typed identifiers ([`ItemId`], [`SegmentId`], [`CustomerId`]),
//! * a dependency-free civil-calendar [`Date`] (days-since-epoch based),
//! * [`Money`](Cents) as integer cents,
//! * [`Basket`] (a sorted item set) and [`Receipt`] (a timestamped basket
//!   with its monetary total),
//! * [`Taxonomy`]: item → segment mapping with human-readable names and
//!   unit prices.
//!
//! Nothing here allocates beyond what the data requires and nothing depends
//! on crates outside `std`, so every downstream experiment is deterministic
//! and portable.

pub mod basket;
pub mod date;
pub mod error;
pub mod ids;
pub mod money;
pub mod taxonomy;

pub use basket::{Basket, Receipt};
pub use date::{Date, Month};
pub use error::TypeError;
pub use ids::{CustomerId, ItemId, SegmentId, WindowIndex};
pub use money::Cents;
pub use taxonomy::{ProductInfo, SegmentInfo, Taxonomy, TaxonomyBuilder};
