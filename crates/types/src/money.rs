//! Money as integer cents.
//!
//! The RFM baseline needs a *monetary* variable; floats accumulate rounding
//! error over millions of receipts, so amounts are exact integer cents with
//! checked-by-construction arithmetic (saturating would hide bugs; we use
//! plain `i64` ops, which have > 9 × 10^16 cents of headroom).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A monetary amount in cents (1/100 of the currency unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cents(pub i64);

impl Cents {
    /// Zero amount.
    pub const ZERO: Cents = Cents(0);

    /// Construct from a whole number of currency units.
    #[inline]
    pub const fn from_units(units: i64) -> Cents {
        Cents(units * 100)
    }

    /// The raw cent count.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// The amount as floating-point currency units (for statistics only).
    #[inline]
    pub fn as_units_f64(self) -> f64 {
        self.0 as f64 / 100.0
    }

    /// True if the amount is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl Add for Cents {
    type Output = Cents;
    #[inline]
    fn add(self, rhs: Cents) -> Cents {
        Cents(self.0 + rhs.0)
    }
}

impl AddAssign for Cents {
    #[inline]
    fn add_assign(&mut self, rhs: Cents) {
        self.0 += rhs.0;
    }
}

impl Sub for Cents {
    type Output = Cents;
    #[inline]
    fn sub(self, rhs: Cents) -> Cents {
        Cents(self.0 - rhs.0)
    }
}

impl SubAssign for Cents {
    #[inline]
    fn sub_assign(&mut self, rhs: Cents) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for Cents {
    type Output = Cents;
    #[inline]
    fn mul(self, rhs: i64) -> Cents {
        Cents(self.0 * rhs)
    }
}

impl Neg for Cents {
    type Output = Cents;
    #[inline]
    fn neg(self) -> Cents {
        Cents(-self.0)
    }
}

impl Sum for Cents {
    fn sum<I: Iterator<Item = Cents>>(iter: I) -> Cents {
        iter.fold(Cents::ZERO, Add::add)
    }
}

impl fmt::Display for Cents {
    /// Renders as `units.cc`, e.g. `12.05`; negative amounts keep the sign
    /// in front (`-3.40`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}{}.{:02}", abs / 100, abs % 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Cents::from_units(12), Cents(1200));
        assert_eq!(Cents(1234).raw(), 1234);
        assert_eq!(Cents::ZERO, Cents(0));
        assert!(Cents(1).is_positive());
        assert!(!Cents(0).is_positive());
        assert!(!Cents(-1).is_positive());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Cents(100) + Cents(250), Cents(350));
        assert_eq!(Cents(100) - Cents(250), Cents(-150));
        assert_eq!(Cents(100) * 3, Cents(300));
        assert_eq!(-Cents(70), Cents(-70));
        let mut c = Cents(10);
        c += Cents(5);
        c -= Cents(3);
        assert_eq!(c, Cents(12));
    }

    #[test]
    fn sum_iterator() {
        let total: Cents = [Cents(100), Cents(25), Cents(3)].into_iter().sum();
        assert_eq!(total, Cents(128));
        let empty: Cents = std::iter::empty().sum();
        assert_eq!(empty, Cents::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cents(1205).to_string(), "12.05");
        assert_eq!(Cents(5).to_string(), "0.05");
        assert_eq!(Cents(-340).to_string(), "-3.40");
        assert_eq!(Cents(0).to_string(), "0.00");
    }

    #[test]
    fn as_units_f64() {
        assert!((Cents(1250).as_units_f64() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(Cents(1) < Cents(2));
        assert!(Cents(-1) < Cents(0));
    }
}
