//! Product taxonomy: items grouped into segments.
//!
//! The paper's dataset "contains 4 millions products, that are grouped into
//! 3 388 segments" and the models operate on the segment abstraction. A
//! [`Taxonomy`] is a dense item → segment map with human-readable names and
//! unit prices; a [`TaxonomyBuilder`] constructs it incrementally.

use crate::{Cents, ItemId, SegmentId, TypeError};

/// Per-product metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductInfo {
    /// The product id (dense: equals its position in the taxonomy).
    pub item: ItemId,
    /// The segment the product belongs to.
    pub segment: SegmentId,
    /// Display name, e.g. `"arabica ground coffee 250g"`.
    pub name: String,
    /// Unit price.
    pub price: Cents,
}

/// Per-segment metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The segment id (dense: equals its position in the taxonomy).
    pub segment: SegmentId,
    /// Display name, e.g. `"coffee"`.
    pub name: String,
}

/// Immutable item → segment taxonomy with names and prices.
///
/// Ids are dense (`0..n_products`, `0..n_segments`), so all lookups are
/// array indexing.
#[derive(Debug, Clone, Default)]
pub struct Taxonomy {
    products: Vec<ProductInfo>,
    segments: Vec<SegmentInfo>,
    /// Products of each segment, in id order.
    members: Vec<Vec<ItemId>>,
}

impl Taxonomy {
    /// Number of products.
    #[inline]
    pub fn num_products(&self) -> usize {
        self.products.len()
    }

    /// Number of segments.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Metadata of a product.
    pub fn product(&self, item: ItemId) -> Result<&ProductInfo, TypeError> {
        self.products
            .get(item.index())
            .ok_or(TypeError::UnknownItem(item.raw()))
    }

    /// Metadata of a segment.
    pub fn segment(&self, seg: SegmentId) -> Result<&SegmentInfo, TypeError> {
        self.segments
            .get(seg.index())
            .ok_or(TypeError::UnknownSegment(seg.raw()))
    }

    /// Segment of a product.
    pub fn segment_of(&self, item: ItemId) -> Result<SegmentId, TypeError> {
        self.product(item).map(|p| p.segment)
    }

    /// Unit price of a product.
    pub fn price_of(&self, item: ItemId) -> Result<Cents, TypeError> {
        self.product(item).map(|p| p.price)
    }

    /// Products belonging to a segment, in id order.
    pub fn products_in(&self, seg: SegmentId) -> Result<&[ItemId], TypeError> {
        self.members
            .get(seg.index())
            .map(Vec::as_slice)
            .ok_or(TypeError::UnknownSegment(seg.raw()))
    }

    /// Iterate over all products.
    pub fn products(&self) -> impl Iterator<Item = &ProductInfo> {
        self.products.iter()
    }

    /// Iterate over all segments.
    pub fn segments(&self) -> impl Iterator<Item = &SegmentInfo> {
        self.segments.iter()
    }

    /// Look a segment up by exact name (linear scan; intended for tests,
    /// examples and CLI use, not hot paths).
    pub fn segment_by_name(&self, name: &str) -> Option<SegmentId> {
        self.segments
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.segment)
    }

    /// Look a product up by exact name (linear scan; convenience only).
    pub fn product_by_name(&self, name: &str) -> Option<ItemId> {
        self.products
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.item)
    }
}

/// Incremental builder for [`Taxonomy`]; allocates dense ids.
#[derive(Debug, Default)]
pub struct TaxonomyBuilder {
    products: Vec<ProductInfo>,
    segments: Vec<SegmentInfo>,
    members: Vec<Vec<ItemId>>,
}

impl TaxonomyBuilder {
    /// Create an empty builder.
    pub fn new() -> TaxonomyBuilder {
        TaxonomyBuilder::default()
    }

    /// Register a new segment; returns its dense id.
    pub fn add_segment(&mut self, name: impl Into<String>) -> SegmentId {
        let id = SegmentId::new(self.segments.len() as u32);
        self.segments.push(SegmentInfo {
            segment: id,
            name: name.into(),
        });
        self.members.push(Vec::new());
        id
    }

    /// Register a new product under `segment`; returns its dense id.
    pub fn add_product(
        &mut self,
        segment: SegmentId,
        name: impl Into<String>,
        price: Cents,
    ) -> Result<ItemId, TypeError> {
        if segment.index() >= self.segments.len() {
            return Err(TypeError::UnknownSegment(segment.raw()));
        }
        let id = ItemId::new(self.products.len() as u32);
        self.products.push(ProductInfo {
            item: id,
            segment,
            name: name.into(),
            price,
        });
        self.members[segment.index()].push(id);
        Ok(id)
    }

    /// Finish building.
    pub fn build(self) -> Taxonomy {
        Taxonomy {
            products: self.products,
            segments: self.segments,
            members: self.members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Taxonomy {
        let mut b = TaxonomyBuilder::new();
        let coffee = b.add_segment("coffee");
        let milk = b.add_segment("milk");
        b.add_product(coffee, "arabica 250g", Cents(450)).unwrap();
        b.add_product(coffee, "robusta 500g", Cents(380)).unwrap();
        b.add_product(milk, "whole milk 1L", Cents(120)).unwrap();
        b.build()
    }

    #[test]
    fn dense_ids() {
        let t = sample();
        assert_eq!(t.num_segments(), 2);
        assert_eq!(t.num_products(), 3);
        assert_eq!(t.product(ItemId::new(0)).unwrap().name, "arabica 250g");
        assert_eq!(t.segment(SegmentId::new(1)).unwrap().name, "milk");
    }

    #[test]
    fn segment_of_and_price() {
        let t = sample();
        assert_eq!(t.segment_of(ItemId::new(1)).unwrap(), SegmentId::new(0));
        assert_eq!(t.segment_of(ItemId::new(2)).unwrap(), SegmentId::new(1));
        assert_eq!(t.price_of(ItemId::new(2)).unwrap(), Cents(120));
    }

    #[test]
    fn members_listing() {
        let t = sample();
        assert_eq!(
            t.products_in(SegmentId::new(0)).unwrap(),
            &[ItemId::new(0), ItemId::new(1)]
        );
        assert_eq!(t.products_in(SegmentId::new(1)).unwrap(), &[ItemId::new(2)]);
    }

    #[test]
    fn unknown_ids_error() {
        let t = sample();
        assert_eq!(
            t.product(ItemId::new(99)).unwrap_err(),
            TypeError::UnknownItem(99)
        );
        assert_eq!(
            t.segment(SegmentId::new(99)).unwrap_err(),
            TypeError::UnknownSegment(99)
        );
        assert!(t.products_in(SegmentId::new(99)).is_err());
    }

    #[test]
    fn add_product_to_unknown_segment_fails() {
        let mut b = TaxonomyBuilder::new();
        assert!(b.add_product(SegmentId::new(0), "ghost", Cents(1)).is_err());
    }

    #[test]
    fn lookup_by_name() {
        let t = sample();
        assert_eq!(t.segment_by_name("milk"), Some(SegmentId::new(1)));
        assert_eq!(t.segment_by_name("fish"), None);
        assert_eq!(t.product_by_name("whole milk 1L"), Some(ItemId::new(2)));
        assert_eq!(t.product_by_name("nope"), None);
    }

    #[test]
    fn iterators_cover_everything() {
        let t = sample();
        assert_eq!(t.products().count(), 3);
        assert_eq!(t.segments().count(), 2);
    }

    #[test]
    fn empty_taxonomy() {
        let t = TaxonomyBuilder::new().build();
        assert_eq!(t.num_products(), 0);
        assert_eq!(t.num_segments(), 0);
    }
}
