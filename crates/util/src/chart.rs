//! ASCII line charts.
//!
//! The paper's two figures are line plots (AUROC over months; stability
//! over months). The experiment binaries render them directly in the
//! terminal with this module, alongside CSV series for external plotting.

use crate::table::fmt_f64;
use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points, assumed sorted by x.
    pub points: Vec<(f64, f64)>,
    /// Glyph used for this series in the plot body.
    pub glyph: char,
}

impl Series {
    /// Create a series.
    pub fn new(name: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
            glyph,
        }
    }
}

/// Configuration for [`render`].
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Plot body width in columns.
    pub width: usize,
    /// Plot body height in rows.
    pub height: usize,
    /// Y-axis range; `None` derives it from the data.
    pub y_range: Option<(f64, f64)>,
    /// Optional x positions to mark with a vertical line (e.g. the paper's
    /// "start of attrition" marker at month 18).
    pub vmarks: Vec<(f64, String)>,
    /// Axis titles.
    pub x_label: String,
    /// Y axis title.
    pub y_label: String,
}

impl Default for ChartConfig {
    fn default() -> ChartConfig {
        ChartConfig {
            width: 72,
            height: 20,
            y_range: None,
            vmarks: Vec::new(),
            x_label: String::new(),
            y_label: String::new(),
        }
    }
}

/// Render series as an ASCII chart.
///
/// Returns an empty string when no series has any point.
pub fn render(series: &[Series], cfg: &ChartConfig) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return String::new();
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, _) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
    }
    if x_hi == x_lo {
        x_hi = x_lo + 1.0;
    }
    let (y_lo, y_hi) = cfg.y_range.unwrap_or_else(|| {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, y) in &all {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        if hi == lo {
            hi = lo + 1.0;
        }
        (lo, hi)
    });

    let w = cfg.width.max(8);
    let h = cfg.height.max(4);
    let mut grid = vec![vec![' '; w]; h];

    let col_of = |x: f64| -> usize {
        let t = (x - x_lo) / (x_hi - x_lo);
        ((t * (w - 1) as f64).round() as i64).clamp(0, w as i64 - 1) as usize
    };
    let row_of = |y: f64| -> usize {
        let t = ((y - y_lo) / (y_hi - y_lo)).clamp(0.0, 1.0);
        let r = ((1.0 - t) * (h - 1) as f64).round() as i64;
        r.clamp(0, h as i64 - 1) as usize
    };

    // Vertical markers first so data overdraws them.
    for (x, _) in &cfg.vmarks {
        let c = col_of(*x);
        for row in grid.iter_mut() {
            row[c] = '|';
        }
    }

    for s in series {
        // Connect consecutive points with linear interpolation at column
        // resolution so the plot reads as a line, not a scatter.
        for pair in s.points.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let (c0, c1) = (col_of(x0), col_of(x1));
            if c1 > c0 {
                // `c` is both an index and an interpolation coordinate, so
                // a plain range reads better than enumerate here.
                #[allow(clippy::needless_range_loop)]
                for c in c0..=c1 {
                    let t = (c - c0) as f64 / (c1 - c0) as f64;
                    let y = y0 + t * (y1 - y0);
                    grid[row_of(y)][c] = s.glyph;
                }
            } else {
                grid[row_of(y0)][c0] = s.glyph;
                grid[row_of(y1)][c1] = s.glyph;
            }
        }
        if s.points.len() == 1 {
            let (x, y) = s.points[0];
            grid[row_of(y)][col_of(x)] = s.glyph;
        }
    }

    let mut out = String::new();
    if !cfg.y_label.is_empty() {
        let _ = writeln!(out, "{}", cfg.y_label);
    }
    for (r, row) in grid.iter().enumerate() {
        let y = y_hi - (y_hi - y_lo) * r as f64 / (h - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{:>8} |{}", fmt_f64(y, 2), line.trim_end());
    }
    let _ = writeln!(out, "{:>8} +{}", "", "-".repeat(w));
    let _ = writeln!(
        out,
        "{:>8}  {:<w$}",
        "",
        format!(
            "{}{}{}",
            fmt_f64(x_lo, 0),
            " ".repeat(w.saturating_sub(fmt_f64(x_lo, 0).len() + fmt_f64(x_hi, 0).len() + 1)),
            fmt_f64(x_hi, 0)
        ),
        w = w
    );
    if !cfg.x_label.is_empty() {
        let _ = writeln!(out, "{:>8}  {:^w$}", "", cfg.x_label, w = w);
    }
    for s in series {
        let _ = writeln!(out, "  {} {}", s.glyph, s.name);
    }
    for (x, label) in &cfg.vmarks {
        let _ = writeln!(out, "  | {} (x = {})", label, fmt_f64(*x, 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(points: Vec<(f64, f64)>) -> Series {
        Series::new("test", '*', points)
    }

    #[test]
    fn empty_series_renders_empty() {
        assert_eq!(render(&[], &ChartConfig::default()), "");
        assert_eq!(render(&[line(vec![])], &ChartConfig::default()), "");
    }

    #[test]
    fn single_point_plots() {
        let out = render(&[line(vec![(1.0, 0.5)])], &ChartConfig::default());
        assert!(out.contains('*'));
    }

    #[test]
    fn flat_line_appears_once_per_column_band() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 0.5)).collect();
        let cfg = ChartConfig {
            width: 20,
            height: 5,
            y_range: Some((0.0, 1.0)),
            ..ChartConfig::default()
        };
        let out = render(&[line(pts)], &cfg);
        // Middle row should carry the line.
        let rows: Vec<&str> = out.lines().collect();
        let middle = rows[2];
        assert!(middle.contains("*"), "middle row: {middle}");
    }

    #[test]
    fn vmark_draws_vertical_line() {
        let cfg = ChartConfig {
            width: 21,
            height: 5,
            y_range: Some((0.0, 1.0)),
            vmarks: vec![(5.0, "onset".into())],
            ..ChartConfig::default()
        };
        let out = render(&[line(vec![(0.0, 0.0), (10.0, 0.0)])], &cfg);
        let bars = out.lines().filter(|l| l.contains('|')).count();
        assert!(bars >= 5, "expected vertical marker rows, got:\n{out}");
        assert!(out.contains("onset"));
    }

    #[test]
    fn rising_line_monotone_rows() {
        let pts: Vec<(f64, f64)> = (0..=10).map(|i| (i as f64, i as f64 / 10.0)).collect();
        let cfg = ChartConfig {
            width: 40,
            height: 10,
            y_range: Some((0.0, 1.0)),
            ..ChartConfig::default()
        };
        let out = render(&[line(pts)], &cfg);
        // First plotted row (top) should contain the glyph near the right,
        // last near the left.
        let body: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        let top = body.first().unwrap();
        let bottom = body.last().unwrap();
        assert!(top.rfind('*').unwrap() > bottom.rfind('*').unwrap());
    }

    #[test]
    fn legend_and_labels_present() {
        let cfg = ChartConfig {
            x_label: "Number of months".into(),
            y_label: "AUROC".into(),
            ..ChartConfig::default()
        };
        let out = render(
            &[Series::new("RFM model", 'o', vec![(0.0, 0.5), (1.0, 0.6)])],
            &cfg,
        );
        assert!(out.contains("RFM model"));
        assert!(out.contains("Number of months"));
        assert!(out.contains("AUROC"));
    }
}
