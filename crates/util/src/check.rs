//! Deterministic property-based testing without external dependencies.
//!
//! [`forall`] runs a property closure over `cases` generated inputs.
//! Each case gets its own [`Rng`] derived from a base seed, so every run
//! (and every CI machine) sees the identical input sequence. When a case
//! fails, the runner reports the case index, the per-case seed, and the
//! `Debug` rendering of the failing input before re-raising the panic —
//! enough to replay that single case with [`replay`].
//!
//! The base seed defaults to [`DEFAULT_SEED`] and can be overridden with
//! the `ATTRITION_PROP_SEED` environment variable to explore a different
//! slice of the input space:
//!
//! ```text
//! ATTRITION_PROP_SEED=12345 cargo test -q
//! ```
//!
//! Properties keep plain `assert!`-style bodies; a generator is any
//! `FnMut(&mut Rng) -> T`:
//!
//! ```
//! use attrition_util::check::forall;
//!
//! forall(64, |rng| rng.i64_in(-100, 100), |&x| {
//!     assert_eq!(x + 0, x);
//!     assert!(x * x >= 0);
//! });
//! ```

use crate::rng::Rng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base seed used when `ATTRITION_PROP_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0xA77D_170E;

/// Golden-ratio increment decorrelating per-case seeds.
const CASE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The base seed for this process: `ATTRITION_PROP_SEED` if set and
/// parseable as `u64`, otherwise [`DEFAULT_SEED`].
pub fn base_seed() -> u64 {
    std::env::var("ATTRITION_PROP_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Seed of case `case` under base seed `base` (what [`forall`] prints on
/// failure and [`replay`] consumes).
pub fn case_seed(base: u64, case: u64) -> u64 {
    base ^ case.wrapping_mul(CASE_STRIDE)
}

/// Run `property` against `cases` inputs drawn from `generate`, under
/// the process base seed. Panics (re-raising the property's own panic)
/// on the first failing case after printing its index, seed, and input.
pub fn forall<T: std::fmt::Debug>(
    cases: u64,
    generate: impl FnMut(&mut Rng) -> T,
    property: impl FnMut(&T),
) {
    forall_seeded(base_seed(), cases, generate, property)
}

/// [`forall`] with an explicit base seed (bypasses the environment).
pub fn forall_seeded<T: std::fmt::Debug>(
    base: u64,
    cases: u64,
    mut generate: impl FnMut(&mut Rng) -> T,
    mut property: impl FnMut(&T),
) {
    for case in 0..cases {
        let seed = case_seed(base, case);
        let mut rng = Rng::seed_from_u64(seed);
        let input = generate(&mut rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&input)));
        if let Err(panic) = outcome {
            eprintln!(
                "property failed at case {case}/{cases} \
                 (base seed {base}, case seed {seed})\ninput: {input:#?}\n\
                 replay with: attrition_util::check::replay({seed}, generate, property)"
            );
            resume_unwind(panic);
        }
    }
}

/// Re-run a single case by its reported seed.
pub fn replay<T: std::fmt::Debug>(
    seed: u64,
    mut generate: impl FnMut(&mut Rng) -> T,
    mut property: impl FnMut(&T),
) {
    let mut rng = Rng::seed_from_u64(seed);
    let input = generate(&mut rng);
    property(&input);
}

/// A vector of `len ∈ [min_len, max_len]` items from `item`.
pub fn gen_vec<T>(
    rng: &mut Rng,
    min_len: usize,
    max_len: usize,
    mut item: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    assert!(min_len <= max_len);
    let len = min_len + rng.usize_below(max_len - min_len + 1);
    (0..len).map(|_| item(rng)).collect()
}

/// A printable-ASCII string (space through `~`) of `len ∈ [min_len,
/// max_len]`, the alphabet CSV fields exercise.
pub fn gen_ascii_string(rng: &mut Rng, min_len: usize, max_len: usize) -> String {
    gen_vec(rng, min_len, max_len, |rng| {
        (b' ' + rng.u64_below(95) as u8) as char
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_is_deterministic_per_seed() {
        let mut a = Vec::new();
        forall_seeded(99, 16, |rng| rng.next_u64(), |&x| a.push(x));
        let mut b = Vec::new();
        forall_seeded(99, 16, |rng| rng.next_u64(), |&x| b.push(x));
        assert_eq!(a, b);
        let mut c = Vec::new();
        forall_seeded(100, 16, |rng| rng.next_u64(), |&x| c.push(x));
        assert_ne!(a, c, "different base seeds must differ");
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        forall(
            32,
            |rng| rng.u64_below(10),
            |&x| {
                count += 1;
                assert!(x < 10);
            },
        );
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_case_is_replayable() {
        // Find a failing case the hard way, then confirm replay hits the
        // same input.
        let base = 7u64;
        let generate = |rng: &mut Rng| rng.u64_below(100);
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall_seeded(base, 256, generate, |&x| assert!(x < 90, "big: {x}"));
        }));
        assert!(result.is_err(), "expected some case ≥ 90 in 256 draws");
        // The failing case index is whichever first produced ≥ 90.
        let mut failing_seed = None;
        for case in 0..256 {
            let seed = case_seed(base, case);
            let mut rng = Rng::seed_from_u64(seed);
            if generate(&mut rng) >= 90 {
                failing_seed = Some(seed);
                break;
            }
        }
        let seed = failing_seed.expect("a case ≥ 90 exists");
        let replayed = catch_unwind(AssertUnwindSafe(|| {
            replay(seed, generate, |&x| assert!(x < 90, "big: {x}"));
        }));
        assert!(replayed.is_err(), "replay must reproduce the failure");
    }

    #[test]
    fn gen_vec_respects_bounds() {
        forall(
            64,
            |rng| gen_vec(rng, 2, 5, |r| r.u64_below(3)),
            |v| {
                assert!((2..=5).contains(&v.len()));
                assert!(v.iter().all(|&x| x < 3));
            },
        );
    }

    #[test]
    fn gen_ascii_string_is_printable() {
        forall(
            64,
            |rng| gen_ascii_string(rng, 0, 20),
            |s| {
                assert!(s.len() <= 20);
                assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            },
        );
    }
}
