//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Built in-repo — like [`rng`](crate::rng) — so the serving layer's
//! write-ahead log and checkpoint files carry checksums without pulling
//! an external crate. The reflected polynomial `0xEDB8_8320` with init
//! and final XOR of `0xFFFF_FFFF` matches every standard `crc32`
//! implementation, so the files stay verifiable with external tooling
//! (`python3 -c 'import zlib; ...'`).

/// 256-entry lookup table for the reflected polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finish()
}

/// Incremental CRC-32 over multiple byte slices.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh hasher (initial state `0xFFFF_FFFF`).
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &byte in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (the hasher stays usable).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from zlib's crc32().
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"write-ahead logs need checksums";
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data: Vec<u8> = (0u16..256).map(|b| b as u8).collect();
        let reference = crc32(&data);
        let mut corrupted = data.clone();
        for pos in 0..data.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                corrupted[pos] ^= flip;
                assert_ne!(
                    crc32(&corrupted),
                    reference,
                    "flip {flip:#x} at byte {pos} went undetected"
                );
                corrupted[pos] ^= flip;
            }
        }
    }
}
