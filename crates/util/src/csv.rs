//! Minimal CSV reading and writing.
//!
//! Implements the subset of RFC 4180 the workspace needs: comma separator,
//! double-quote quoting with `""` escapes, LF or CRLF line endings. Used by
//! the store's import/export and by experiment binaries writing result
//! series. Built in-repo to stay inside the allowed dependency set.

use std::fmt::Write as _;

/// Split one CSV record into fields, honoring quotes.
///
/// Returns `None` if the record is malformed (unterminated quote).
pub fn parse_record(line: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return None;
                }
                fields.push(field);
                return Some(fields);
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if field.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            Some(c) => field.push(c),
        }
    }
}

/// Render one CSV record, quoting fields that need it.
pub fn write_record(fields: &[&str]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains([',', '"', '\n', '\r']) {
            out.push('"');
            for c in f.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out
}

/// Iterate over the records of a CSV document (handles CRLF, skips the
/// final empty line if the document ends with a newline).
pub fn parse_document(text: &str) -> impl Iterator<Item = Option<Vec<String>>> + '_ {
    text.lines()
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .filter(|l| !l.is_empty())
        .map(parse_record)
}

/// A growable CSV document writer.
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    buf: String,
}

impl CsvWriter {
    /// Create an empty writer.
    pub fn new() -> CsvWriter {
        CsvWriter::default()
    }

    /// Append a record.
    pub fn record(&mut self, fields: &[&str]) -> &mut CsvWriter {
        let _ = writeln!(self.buf, "{}", write_record(fields));
        self
    }

    /// Append a record of already-owned strings.
    pub fn record_owned(&mut self, fields: &[String]) -> &mut CsvWriter {
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        self.record(&refs)
    }

    /// The document produced so far.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Borrow the document produced so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{forall, gen_ascii_string, gen_vec};

    #[test]
    fn parse_plain() {
        assert_eq!(
            parse_record("a,b,c").unwrap(),
            vec!["a".to_owned(), "b".into(), "c".into()]
        );
        assert_eq!(parse_record("").unwrap(), vec!["".to_owned()]);
        assert_eq!(parse_record("a,,c").unwrap(), vec!["a", "", "c"]);
    }

    #[test]
    fn parse_quoted() {
        assert_eq!(
            parse_record(r#""a,b",c"#).unwrap(),
            vec!["a,b".to_owned(), "c".into()]
        );
        assert_eq!(
            parse_record(r#""he said ""hi""",x"#).unwrap(),
            vec![r#"he said "hi""#.to_owned(), "x".into()]
        );
    }

    #[test]
    fn parse_unterminated_quote_fails() {
        assert_eq!(parse_record(r#""abc"#), None);
    }

    #[test]
    fn write_quotes_when_needed() {
        assert_eq!(write_record(&["a", "b"]), "a,b");
        assert_eq!(write_record(&["a,b"]), "\"a,b\"");
        assert_eq!(write_record(&["say \"hi\""]), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn document_roundtrip() {
        let mut w = CsvWriter::new();
        w.record(&["h1", "h2"]);
        w.record(&["v,1", "v\"2"]);
        let doc = w.finish();
        let rows: Vec<Vec<String>> = parse_document(&doc).map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["v,1".to_owned(), "v\"2".into()]);
    }

    #[test]
    fn document_handles_crlf() {
        let rows: Vec<Vec<String>> = parse_document("a,b\r\nc,d\r\n")
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn roundtrip_arbitrary_fields() {
        forall(
            512,
            |rng| gen_vec(rng, 1, 5, |r| gen_ascii_string(r, 0, 20)),
            |fields| {
                let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
                let line = write_record(&refs);
                let parsed = parse_record(&line).expect("own output must parse");
                assert_eq!(&parsed, fields);
            },
        );
    }
}
