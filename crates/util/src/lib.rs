//! # attrition-util
//!
//! Foundation utilities shared across the attrition workspace:
//!
//! * [`rng`] — a deterministic, seedable PRNG (SplitMix64 seeding a
//!   xoshiro256\*\*) with the samplers the retail simulator needs (uniform,
//!   normal, Poisson, Zipf, Bernoulli, shuffling). Built in-repo instead of
//!   depending on `rand` so that every experiment in the repository is
//!   bit-reproducible regardless of external crate version churn.
//! * [`stats`] — descriptive statistics (mean, variance, quantiles,
//!   histograms) and bootstrap resampling.
//! * [`table`] — aligned text tables for experiment reports.
//! * [`csv`] — minimal CSV reading/writing (quoting-aware) used by the
//!   store's import/export and by the experiment binaries.
//! * [`chart`] — ASCII line charts so the paper's figures can be
//!   regenerated directly in a terminal.
//! * [`check`] — a deterministic property-based test runner (seeded via
//!   [`rng`]) so the workspace's property tests run offline with zero
//!   registry dependencies.
//! * [`crc`] — CRC-32 (IEEE) for the serving layer's write-ahead log and
//!   checkpoint integrity checks.

pub mod chart;
pub mod check;
pub mod crc;
pub mod csv;
pub mod rng;
pub mod stats;
pub mod table;

pub use rng::{Rng, Zipf};
pub use stats::Summary;
pub use table::Table;
