//! Deterministic pseudo-random number generation.
//!
//! The simulator and every randomized experiment in the workspace draw from
//! this generator: a xoshiro256\*\* core seeded via SplitMix64 (the seeding
//! procedure recommended by the xoshiro authors). It is small, fast,
//! passes BigCrush, and — crucially for a reproduction repository — lives
//! in-repo so a figure regenerated in five years still sees the identical
//! random stream.
//!
//! Not cryptographic. Do not use for anything security-relevant.

/// Deterministic PRNG: xoshiro256\*\* with SplitMix64 seeding.
///
/// ```
/// use attrition_util::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let coin = a.bernoulli(0.5);
/// let trips = a.poisson(4.0);
/// let day = a.u64_below(28);
/// assert!(day < 28 && trips < 100 && (coin || !coin));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng {
    /// Create a generator from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator. Used to give each simulated
    /// customer its own stream so that adding customers does not perturb
    /// the streams of existing ones.
    pub fn fork(&mut self, tag: u64) -> Rng {
        // Mix the tag into fresh entropy from this stream via SplitMix64 so
        // children with different tags are decorrelated.
        let mut sm = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift with
    /// rejection for exactness). `bound` must be non-zero.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below requires a positive bound");
        // Rejection sampling on the top bits: unbiased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in requires lo <= hi");
        let span = (hi - lo) as u64 + 1;
        lo + self.u64_below(span) as i64
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box–Muller, one value per call; the twin
    /// value is discarded to keep the generator stateless beyond `s`).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.f64();
            if u1 > 0.0 {
                let u2 = self.f64();
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Poisson deviate with rate `lambda >= 0`.
    ///
    /// Knuth's multiplication method for small rates; for `lambda > 30`
    /// a normal approximation with continuity correction (error well below
    /// the simulator's noise floor and O(1) instead of O(lambda)).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson requires non-negative lambda");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal_with(lambda, lambda.sqrt());
            return x.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s > 0`: rank `r`
    /// has probability proportional to `1/(r+1)^s`.
    ///
    /// Convenience wrapper that builds a [`Zipf`] table per call; when
    /// sampling repeatedly with the same `(n, s)`, build the table once.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        Zipf::new(n, s).sample(self)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.usize_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Choose one element uniformly at random; `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.usize_below(slice.len())])
        }
    }

    /// Sample an index according to the (unnormalized, non-negative)
    /// weights; returns `None` if the weights sum to zero or the slice is
    /// empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total.is_nan() || total <= 0.0 {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return Some(i);
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

/// Exact Zipf sampler over ranks `[0, n)` with exponent `s`: rank `r` has
/// probability proportional to `1/(r+1)^s`.
///
/// Precomputes the cumulative distribution once (`O(n)` memory) and samples
/// by binary search (`O(log n)`), which is both exact and fast at the
/// catalog sizes the simulator uses (thousands to low millions of ranks).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. Panics if `n == 0` or `s <= 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf requires n > 0");
        assert!(s > 0.0, "zipf requires s > 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        // partition_point returns the first index whose cdf value exceeds u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut root = Rng::seed_from_u64(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn u64_below_bounds() {
        let mut rng = Rng::seed_from_u64(5);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.u64_below(bound) < bound);
            }
        }
    }

    #[test]
    fn u64_below_uniformity() {
        let mut rng = Rng::seed_from_u64(6);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.u64_below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).abs() < (expected as i64) / 10,
                "bucket count {c} far from {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn u64_below_zero_panics() {
        Rng::seed_from_u64(0).u64_below(0);
    }

    #[test]
    fn i64_in_inclusive() {
        let mut rng = Rng::seed_from_u64(8);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = rng.i64_in(-3, 3);
            assert!((-3..=3).contains(&x));
            saw_lo |= x == -3;
            saw_hi |= x == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn bernoulli_rates() {
        let mut rng = Rng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(10);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_with_parameters() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal_with(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = Rng::seed_from_u64(12);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn poisson_zero() {
        let mut rng = Rng::seed_from_u64(14);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let mut rng = Rng::seed_from_u64(15);
        let n = 100;
        let mut counts = vec![0usize; n];
        let draws = 100_000;
        for _ in 0..draws {
            let r = rng.zipf(n, 1.2);
            assert!(r < n);
            counts[r] += 1;
        }
        // Rank 0 must dominate rank 9 which must dominate rank 99.
        assert!(counts[0] > counts[9] * 2, "{} vs {}", counts[0], counts[9]);
        assert!(counts[9] > counts[99], "{} vs {}", counts[9], counts[99]);
    }

    #[test]
    fn zipf_single_element() {
        let mut rng = Rng::seed_from_u64(16);
        assert_eq!(rng.zipf(1, 1.5), 0);
    }

    #[test]
    fn zipf_s_equal_one() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 50;
        for _ in 0..10_000 {
            assert!(rng.zipf(n, 1.0) < n);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_matches_counts() {
        let z = Zipf::new(10, 1.5);
        let total: f64 = (0..10).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // pmf(0)/pmf(1) should be 2^1.5
        let ratio = z.pmf(0) / z.pmf(1);
        assert!((ratio - 2f64.powf(1.5)).abs() < 1e-9, "ratio {ratio}");

        let mut rng = Rng::seed_from_u64(23);
        let draws = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let observed = count as f64 / draws as f64;
            assert!(
                (observed - z.pmf(r)).abs() < 0.01,
                "rank {r}: observed {observed} vs pmf {}",
                z.pmf(r)
            );
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(18);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input intact");
    }

    #[test]
    fn choose_behaviour() {
        let mut rng = Rng::seed_from_u64(19);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let one = [42u8];
        assert_eq!(rng.choose(&one), Some(&42));
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = Rng::seed_from_u64(20);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(rng.choose_weighted(&weights), Some(1));
        }
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.choose_weighted(&[]), None);
    }

    #[test]
    fn choose_weighted_distribution() {
        let mut rng = Rng::seed_from_u64(21);
        let weights = [1.0, 3.0];
        let n = 100_000;
        let ones = (0..n)
            .filter(|_| rng.choose_weighted(&weights) == Some(1))
            .count();
        let rate = ones as f64 / n as f64;
        assert!((rate - 0.75).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn permutation_contains_all() {
        let mut rng = Rng::seed_from_u64(22);
        let p = rng.permutation(10);
        let mut s = p.clone();
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn known_reference_stream() {
        // Regression pin: if the generator implementation changes, every
        // figure in EXPERIMENTS.md must be regenerated. This test makes
        // such a change loud.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }
}
