//! Descriptive statistics and bootstrap resampling.
//!
//! Everything operates on `f64` slices; the evaluation crate builds its
//! confidence intervals and summaries on top of these primitives.

use crate::rng::Rng;

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (`NaN` when empty).
    pub mean: f64,
    /// Sample standard deviation, `n-1` denominator (`0` for n < 2).
    pub std_dev: f64,
    /// Minimum (`NaN` when empty).
    pub min: f64,
    /// Median (`NaN` when empty).
    pub median: f64,
    /// Maximum (`NaN` when empty).
    pub max: f64,
}

impl Summary {
    /// Compute the summary of a sample.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: f64::NAN,
                std_dev: 0.0,
                min: f64::NAN,
                median: f64::NAN,
                max: f64::NAN,
            };
        }
        let mean = mean(xs);
        let std_dev = std_dev(xs);
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            count: xs.len(),
            mean,
            std_dev,
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (`n-1` denominator); `0` for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Quantile `q ∈ [0,1]` by linear interpolation on an **already sorted**
/// slice; `NaN` for an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Quantile of an unsorted slice (sorts a copy).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// Pearson correlation of two equal-length samples; `NaN` if degenerate.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal lengths");
    if xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// A `(lo, hi)` percentile bootstrap confidence interval for a statistic.
///
/// Resamples `xs` with replacement `reps` times, applies `stat`, and takes
/// the `alpha/2` and `1-alpha/2` quantiles of the resampled statistics.
pub fn bootstrap_ci(
    xs: &[f64],
    reps: usize,
    alpha: f64,
    rng: &mut Rng,
    stat: impl Fn(&[f64]) -> f64,
) -> (f64, f64) {
    assert!(!xs.is_empty(), "bootstrap_ci requires a non-empty sample");
    assert!(reps > 0, "bootstrap_ci requires reps > 0");
    let mut stats = Vec::with_capacity(reps);
    let mut resample = vec![0.0; xs.len()];
    for _ in 0..reps {
        for slot in resample.iter_mut() {
            *slot = xs[rng.usize_below(xs.len())];
        }
        stats.push(stat(&resample));
    }
    stats.sort_by(f64::total_cmp);
    (
        quantile_sorted(&stats, alpha / 2.0),
        quantile_sorted(&stats, 1.0 - alpha / 2.0),
    )
}

/// Equal-width histogram over `[lo, hi)` with `bins` buckets; values
/// outside the range are clamped into the edge buckets.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram requires bins > 0");
    assert!(hi > lo, "histogram requires hi > lo");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{forall, gen_vec};

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(mean(&[]).is_nan());
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert!((quantile(&xs, 0.25) - 2.0).abs() < 1e-12);
        // interpolation between points
        let ys = [0.0, 10.0];
        assert!((quantile(&ys, 0.3) - 3.0).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn quantile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -1.0), 1.0);
        assert_eq!(quantile(&xs, 2.0), 2.0);
    }

    #[test]
    fn pearson_known_values() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[5.0, 5.0, 5.0]).is_nan());
        assert!(pearson(&[1.0], &[1.0]).is_nan());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn bootstrap_ci_brackets_mean() {
        let mut rng = crate::rng::Rng::seed_from_u64(1);
        let xs: Vec<f64> = (0..500).map(|_| rng.normal_with(10.0, 2.0)).collect();
        let (lo, hi) = bootstrap_ci(&xs, 500, 0.05, &mut rng, mean);
        assert!(lo < 10.0 && 10.0 < hi, "CI [{lo}, {hi}] misses 10");
        assert!(hi - lo < 1.0, "CI too wide: [{lo}, {hi}]");
    }

    #[test]
    fn histogram_buckets() {
        let xs = [0.1, 0.2, 0.5, 0.9, -5.0, 7.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        // Buckets are half-open: [0,0.5) gets {0.1, 0.2} plus clamped -5.0;
        // [0.5,1.0) gets {0.5, 0.9} plus clamped 7.0.
        assert_eq!(h, vec![3, 3]);
    }

    #[test]
    fn summary_bounds_are_consistent() {
        forall(
            256,
            |rng| gen_vec(rng, 1, 99, |r| r.f64_in(-1e6, 1e6)),
            |xs| {
                let s = Summary::of(xs);
                assert!(s.min <= s.median && s.median <= s.max);
                assert!(s.min <= s.mean && s.mean <= s.max);
                assert!(s.std_dev >= 0.0);
            },
        );
    }

    #[test]
    fn quantile_monotone() {
        forall(
            256,
            |rng| {
                (
                    gen_vec(rng, 1, 99, |r| r.f64_in(-1e6, 1e6)),
                    rng.f64(),
                    rng.f64(),
                )
            },
            |(xs, a, b)| {
                let (qa, qb) = (quantile(xs, *a), quantile(xs, *b));
                if a <= b {
                    assert!(qa <= qb + 1e-9);
                } else {
                    assert!(qb <= qa + 1e-9);
                }
            },
        );
    }

    #[test]
    fn histogram_conserves_count() {
        forall(
            256,
            |rng| gen_vec(rng, 0, 199, |r| r.f64_in(-10.0, 10.0)),
            |xs| {
                let h = histogram(xs, -5.0, 5.0, 7);
                assert_eq!(h.iter().sum::<usize>(), xs.len());
            },
        );
    }
}
