//! Aligned text tables for experiment reports.
//!
//! The experiment binaries print the paper's tables/series as terminal
//! tables; this keeps the formatting in one place.

use std::fmt;

/// Horizontal alignment of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left.
    Right,
}

/// A simple text table: header row + data rows, padded per column.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers; numeric-looking
    /// alignment defaults to right for all but the first column.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let aligns = header
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            header,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments (must match the column count).
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Table {
        assert_eq!(
            aligns.len(),
            self.header.len(),
            "alignment count must match column count"
        );
        self.aligns = aligns;
        self
    }

    /// Append a data row (must match the column count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match column count"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => write!(f, "{cell}{}", " ".repeat(pad))?,
                    Align::Right => write!(f, "{}{cell}", " ".repeat(pad))?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with the given number of decimals, rendering NaN as "-".
pub fn fmt_f64(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        "-".to_owned()
    } else {
        format!("{x:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "2"]);
        t.row(["window-months", "10"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name           value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "alpha              2");
        assert_eq!(lines[3], "window-months     10");
    }

    #[test]
    fn custom_alignment() {
        let mut t = Table::new(["a", "b"]).with_aligns(vec![Align::Right, Align::Left]);
        t.row(["x", "yy"]);
        let s = t.to_string();
        assert!(s.lines().nth(2).unwrap().starts_with("x"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_f64_handles_nan() {
        assert_eq!(fmt_f64(1.23456, 3), "1.235");
        assert_eq!(fmt_f64(f64::NAN, 3), "-");
        assert_eq!(fmt_f64(0.5, 0), "0");
    }
}
