//! Retention campaign targeting — the business workflow the paper
//! motivates: "retailers want to lower their retention marketing
//! expenses, by deploying accurate targeted marketing."
//!
//! At a chosen decision window, rank customers by attrition risk, pick a
//! campaign threshold by Youden's J, report the campaign's precision /
//! recall / lift, and aggregate the lost-product explanations of the
//! flagged customers into the campaign's product focus list.
//!
//! Run: `cargo run --release --example campaign_targeting`

use attrition::eval::GainsCurve;
use attrition::model::aggregate_explanations;
use attrition::prelude::*;

fn main() {
    let mut cfg = ScenarioConfig::small();
    cfg.n_loyal = 150;
    cfg.n_defectors = 50; // realistic imbalance: most customers are fine
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let spec = WindowSpec::months(cfg.start, 2);
    let n_windows = cfg.n_months.div_ceil(2);
    let db = WindowedDatabase::from_store(&seg_store, spec, n_windows, WindowAlignment::Global);
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);

    // Decision point: two months after the (unknown to us) onset.
    let decision_window = WindowIndex::new(cfg.onset_month / 2);
    let pairs = matrix.attrition_scores_at(decision_window);
    let customers: Vec<CustomerId> = pairs.iter().map(|(c, _)| *c).collect();
    let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
    let labels: Vec<bool> = customers
        .iter()
        .map(|c| dataset.labels.cohort_of(*c).unwrap().is_defector())
        .collect();

    println!(
        "decision at window {} (month {}): {} customers, {} true defectors",
        decision_window.raw(),
        (decision_window.raw() + 1) * 2,
        customers.len(),
        labels.iter().filter(|&&l| l).count()
    );
    println!("AUROC: {:.3}", auroc(&labels, &scores));

    // Threshold selection: Youden's J on the ROC curve. In production
    // this threshold would come from a historical window; using the same
    // window keeps the example compact.
    let curve = RocCurve::compute(&labels, &scores);
    let best = curve.youden_optimal().expect("non-degenerate curve");
    println!(
        "campaign threshold: attrition score >= {:.3} (tpr {:.2}, fpr {:.2}) — i.e. stability <= {:.3}",
        best.threshold,
        best.tpr,
        best.fpr,
        1.0 - best.threshold
    );

    let cm = ConfusionMatrix::at_threshold(&labels, &scores, best.threshold);
    println!(
        "campaign of {} customers: precision {:.2}, recall {:.2}, lift over random mailing {:.1}x",
        cm.tp + cm.fp,
        cm.precision(),
        cm.recall(),
        cm.lift()
    );

    // Budget planning: how big must the campaign be to reach 80% of the
    // defectors, and what does a fixed top-10% budget capture?
    let gains = GainsCurve::compute(&labels, &scores);
    if let (Some(needed), Some(captured)) = (gains.targeted_for(0.8), gains.captured_at(0.1)) {
        println!(
            "gains: reaching 80% of defectors needs the top {:.0}% of customers; a top-10% budget captures {:.0}% of them",
            needed * 100.0,
            captured * 100.0
        );
    }

    // The call list itself: the ten most at-risk customers.
    println!("\ntop-10 call list (customer, attrition score, ground truth):");
    for (customer, score) in matrix.rank_at(decision_window, 10) {
        let truth = dataset.labels.cohort_of(customer).unwrap();
        println!("  {customer:<6} {score:.3}  {truth:?}");
    }

    // What should the campaign offer? Aggregate the lost products of the
    // flagged customers at the decision window and the one before.
    let flagged: Vec<CustomerId> = customers
        .iter()
        .zip(&scores)
        .filter(|(_, &s)| s >= best.threshold)
        .map(|(c, _)| *c)
        .collect();
    let mut explanations = Vec::new();
    for c in &flagged {
        for k in [
            decision_window.raw().saturating_sub(1),
            decision_window.raw(),
        ] {
            if let Some(e) = matrix.explanation(*c, WindowIndex::new(k)) {
                explanations.push(e.clone());
            }
        }
    }
    let drivers = aggregate_explanations(explanations.iter(), 0.05);
    println!("\ntop product segments driving the flagged customers' attrition:");
    for driver in drivers.iter().take(10) {
        let name = dataset
            .taxonomy
            .segment(SegmentId::new(driver.item.raw()))
            .map(|s| s.name.clone())
            .unwrap_or_else(|_| driver.item.to_string());
        println!(
            "  {name:<20} lost by {:>3} flagged customer-windows (total share {:.2})",
            driver.occurrences, driver.total_share
        );
    }
}
