//! Individual attrition explanation — the paper's Figure-2 use case as a
//! library consumer would run it: take one known defecting customer,
//! plot their stability, and for every drop name the lost products with
//! their significance shares.
//!
//! Run: `cargo run --release --example individual_explanation`

use attrition::datagen::{figure2_customer, Simulator};
use attrition::prelude::*;
use attrition::store::project_to_segments;

fn main() {
    // Catalog + the scripted customer of the paper's Figure 2: stops
    // buying coffee in month 20, and milk + sponges + cheese in month 22.
    let cfg = ScenarioConfig::paper_default();
    let dataset = attrition::datagen::generate(&cfg);
    let customer = CustomerId::new(777_000);
    let profile = figure2_customer(&dataset.taxonomy, customer, 20);
    println!(
        "scripted customer: {} core products, {:.1} trips/month",
        profile.preferred.len(),
        profile.trips_per_month
    );

    // Simulate just this customer over the full observation period.
    let sim = Simulator::new(cfg.start, cfg.n_months, cfg.seasonality.clone(), 99);
    let store = sim.run(&[profile], &dataset.taxonomy);
    let seg_store = project_to_segments(&store, &dataset.taxonomy).expect("cataloged products");

    // Window and analyze.
    let spec = WindowSpec::months(cfg.start, 2);
    let db = WindowedDatabase::from_store(
        &seg_store,
        spec,
        cfg.n_months.div_ceil(2),
        WindowAlignment::Global,
    );
    let windows = db.customer(customer).expect("simulated");
    let analysis = analyze_customer(windows, StabilityParams::PAPER, 4);

    println!("\nstability trajectory with explanations:");
    let mut prev = 1.0f64;
    for (point, expl) in analysis.points.iter().zip(&analysis.explanations) {
        let month = (point.window.raw() + 1) * 2;
        let trend = if point.value < prev - 0.02 {
            " ▼ DROP"
        } else {
            ""
        };
        println!("  month {:>2}: {:.3}{}", month, point.value, trend);
        if point.value < prev - 0.02 {
            for line in expl.describe(&dataset.taxonomy) {
                // `describe` resolves product names at product granularity;
                // here items are segments, so resolve segment names instead.
                let _ = line;
            }
            for lost in expl.lost.iter().filter(|l| l.share >= 0.03) {
                let name = dataset
                    .taxonomy
                    .segment(SegmentId::new(lost.item.raw()))
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|_| lost.item.to_string());
                println!(
                    "        stopped buying {name}: significance {:.1}, {:.0}% of repertoire weight",
                    lost.significance,
                    lost.share * 100.0
                );
            }
        }
        prev = point.value;
    }

    // The retailer's action list: the single most significant lost
    // product per drop window (the paper's argmax).
    println!("\ntargeted marketing candidates (argmax lost product per drop):");
    for expl in &analysis.explanations {
        if let Some(primary) = expl.primary() {
            if primary.share >= 0.05 {
                let name = dataset
                    .taxonomy
                    .segment(SegmentId::new(primary.item.raw()))
                    .map(|s| s.name.clone())
                    .unwrap_or_default();
                println!(
                    "  window {:>2}: coupon for {name} ({:.0}% of lost weight)",
                    expl.window.raw(),
                    primary.share * 100.0
                );
            }
        }
    }
}
