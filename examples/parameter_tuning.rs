//! Hyper-parameter tuning — the paper's 5-fold cross-validation search
//! for (α, window length), as a library consumer would run it on their
//! own data, plus β threshold selection on the chosen configuration.
//!
//! Run: `cargo run --release --example parameter_tuning`

use attrition::eval::grid::{grid_search, product2};
use attrition::prelude::*;

fn main() {
    let cfg = ScenarioConfig::small();
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();

    // Shared folds so every candidate is scored on identical splits.
    let customers: Vec<CustomerId> = seg_store.customers().collect();
    let labels: Vec<bool> = customers
        .iter()
        .map(|c| dataset.labels.cohort_of(*c).unwrap().is_defector())
        .collect();
    let folds = StratifiedKFold::new(&labels, 5, 42);

    let alphas = [1.5f64, 2.0, 3.0];
    let window_lengths = [1u32, 2, 3];
    let grid = product2(&window_lengths, &alphas);

    let (results, best) = grid_search(&grid, |&(w, alpha)| {
        let spec = WindowSpec::months(cfg.start, w);
        let n_windows = cfg.n_months.div_ceil(w);
        let db = WindowedDatabase::from_store(&seg_store, spec, n_windows, WindowAlignment::Global);
        let params = StabilityParams::new(alpha).expect("valid alpha");
        let matrix = StabilityEngine::new(params).compute(&db);
        // Early-detection criterion: windows ending within 4 months after
        // the onset, averaged over held-out folds.
        let eval_windows: Vec<u32> = (0..n_windows)
            .filter(|k| {
                let end = (k + 1) * w;
                end > cfg.onset_month && end <= cfg.onset_month + 4
            })
            .collect();
        let mut fold_scores = Vec::new();
        for fold in folds.folds() {
            let mut per_window = Vec::new();
            for &k in &eval_windows {
                let pairs = matrix.attrition_scores_at(WindowIndex::new(k));
                let scores: Vec<f64> = fold.test.iter().map(|&i| pairs[i].1).collect();
                let fold_labels: Vec<bool> = fold.test.iter().map(|&i| labels[i]).collect();
                let a = auroc(&fold_labels, &scores);
                if !a.is_nan() {
                    per_window.push(a);
                }
            }
            if !per_window.is_empty() {
                fold_scores.push(per_window.iter().sum::<f64>() / per_window.len() as f64);
            }
        }
        fold_scores.iter().sum::<f64>() / fold_scores.len().max(1) as f64
    });

    println!("5-fold CV early-detection AUROC per candidate:");
    for r in &results {
        println!(
            "  window = {} month(s), α = {:<4} → {:.3}",
            r.params.0, r.params.1, r.score
        );
    }
    let (w, alpha) = results[best.expect("grid non-empty")].params;
    println!("\nselected: window = {w} month(s), α = {alpha} (paper: 2 months, α = 2)");

    // With the chosen (w, α), pick the operating threshold β.
    let spec = WindowSpec::months(cfg.start, w);
    let n_windows = cfg.n_months.div_ceil(w);
    let db = WindowedDatabase::from_store(&seg_store, spec, n_windows, WindowAlignment::Global);
    let matrix = StabilityEngine::new(StabilityParams::new(alpha).unwrap()).compute(&db);
    let k = WindowIndex::new(cfg.onset_month / w + 1);
    let pairs = matrix.attrition_scores_at(k);
    let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
    let curve = RocCurve::compute(&labels, &scores);
    let best_point = curve.youden_optimal().expect("non-degenerate");
    println!(
        "operating threshold at window {}: β = {:.3} (flag stability ≤ β; tpr {:.2}, fpr {:.2})",
        k.raw(),
        1.0 - best_point.threshold,
        best_point.tpr,
        best_point.fpr
    );
}
