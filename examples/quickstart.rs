//! Quickstart: simulate a retailer, window the receipts, score stability,
//! and measure attrition detection — the whole pipeline in one screen.
//!
//! Run: `cargo run --release --example quickstart`

use attrition::prelude::*;

fn main() {
    // 1. Generate a synthetic retailer: 60 loyal + 60 defecting customers
    //    over 16 months, defection onset at month 10.
    let dataset = attrition::datagen::generate(&ScenarioConfig::small());
    println!(
        "dataset: {} receipts from {} customers, {} products in {} segments",
        dataset.store.num_receipts(),
        dataset.store.num_customers(),
        dataset.taxonomy.num_products(),
        dataset.taxonomy.num_segments(),
    );

    // 2. Abstract products to segments (the paper's modeling granularity)
    //    and build the windowed database: 2-month windows.
    let seg_store = dataset.segment_store();
    let spec = WindowSpec::months(dataset.config.start, 2);
    let n_windows = dataset.config.n_months.div_ceil(2);
    let db = WindowedDatabase::from_store(&seg_store, spec, n_windows, WindowAlignment::Global);

    // 3. Score every customer's stability at every window with the
    //    paper's α = 2.
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);

    // 4. How well does low stability identify the defectors, per window?
    println!("\nwindow  end-month  AUROC(defector detection)");
    for k in 0..n_windows {
        let pairs = matrix.attrition_scores_at(WindowIndex::new(k));
        let labels: Vec<bool> = pairs
            .iter()
            .map(|(c, _)| dataset.labels.cohort_of(*c).unwrap().is_defector())
            .collect();
        let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
        let marker = if (k + 1) * 2 > dataset.config.onset_month {
            "  <- after onset"
        } else {
            ""
        };
        println!(
            "{k:>6}  {:>9}  {:.3}{marker}",
            (k + 1) * 2,
            auroc(&labels, &scores)
        );
    }

    // 5. Drill into one defector: when did stability drop, and which
    //    products explain it?
    let defector = dataset
        .labels
        .labels()
        .iter()
        .find(|l| l.cohort.is_defector())
        .expect("scenario has defectors")
        .customer;
    let windows = db.customer(defector).expect("customer exists");
    let analysis = analyze_customer(windows, StabilityParams::PAPER, 3);
    println!("\ncustomer {defector} stability trajectory:");
    for (point, expl) in analysis.points.iter().zip(&analysis.explanations) {
        let lost: Vec<String> = expl
            .lost
            .iter()
            .filter(|l| l.share > 0.05)
            .map(|l| {
                dataset
                    .taxonomy
                    .segment(SegmentId::new(l.item.raw()))
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|_| l.item.to_string())
            })
            .collect();
        println!(
            "  window {:>2}: stability {:.3}   lost: {}",
            point.window.raw(),
            point.value,
            if lost.is_empty() {
                "-".into()
            } else {
                lost.join(", ")
            }
        );
    }
}
