//! Streaming deployment — the monitor a retailer would actually run:
//! receipts arrive one by one; whenever a customer's calendar crosses a
//! window boundary their stability is scored incrementally and alerts
//! fire for customers whose stability fell under the β threshold.
//!
//! Run: `cargo run --release --example streaming_monitor`

use attrition::model::StabilityMonitor;
use attrition::prelude::*;

fn main() {
    let cfg = ScenarioConfig::small();
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let spec = WindowSpec::months(cfg.start, 2);
    let beta = StabilityClassifier::new(0.55);

    let mut monitor = StabilityMonitor::new(spec, StabilityParams::PAPER).with_max_explanations(3);

    // Replay the receipt stream in chronological order (a live system
    // would consume a message queue).
    let stream: Vec<(CustomerId, Date, Basket)> = attrition::store::chronological(&seg_store)
        .map(|r| (r.customer, r.date, Basket::new(r.items.to_vec())))
        .collect();
    println!("replaying {} receipts through the monitor…\n", stream.len());

    let mut alerts = 0usize;
    let mut windows_closed = 0usize;
    let mut first_alert: Option<(CustomerId, u32, f64, String)> = None;
    let midpoint = stream.len() / 2;
    for (n, (customer, date, basket)) in stream.into_iter().enumerate() {
        // Halfway through, simulate a process restart: checkpoint the
        // monitor state and restore it — the remaining stream produces
        // identical results (the restart is invisible to the output).
        if n == midpoint {
            let checkpoint = monitor.snapshot();
            monitor = StabilityMonitor::restore(&checkpoint).expect("own checkpoint restores");
            println!(
                "[restarted from a {}-byte checkpoint at receipt {n}; {} customers restored]\n",
                checkpoint.len(),
                monitor.num_customers()
            );
        }
        for closed in monitor.ingest(customer, date, &basket) {
            windows_closed += 1;
            // Skip the warm-up windows: with no established repertoire the
            // value is noisy (the paper's evaluation also starts late).
            if closed.point.window.raw() < 3 {
                continue;
            }
            if beta.classify(&closed.point) == attrition::model::classifier::Verdict::Defecting {
                alerts += 1;
                if first_alert.is_none() {
                    let lost: Vec<String> = closed
                        .explanation
                        .lost
                        .iter()
                        .map(|l| {
                            dataset
                                .taxonomy
                                .segment(SegmentId::new(l.item.raw()))
                                .map(|s| s.name.clone())
                                .unwrap_or_default()
                        })
                        .collect();
                    first_alert = Some((
                        closed.customer,
                        closed.point.window.raw(),
                        closed.point.value,
                        lost.join(", "),
                    ));
                }
            }
        }
    }
    // End of stream: close every customer's remaining windows.
    let end = cfg.start.add_months(cfg.n_months as i32);
    for closed in monitor.flush_until(end) {
        windows_closed += 1;
        if closed.point.window.raw() >= 3 && closed.point.value <= beta.beta {
            alerts += 1;
        }
    }

    println!("windows scored: {windows_closed}");
    println!("alerts fired (stability ≤ {}): {alerts}", beta.beta);
    if let Some((customer, window, value, lost)) = first_alert {
        println!(
            "first alert: customer {customer} at window {window} (stability {value:.3}) — lost: {lost}"
        );
        let cohort = dataset.labels.cohort_of(customer).unwrap();
        println!("ground truth for that customer: {cohort:?}");
    }

    // Sanity: alerts should concentrate on true defectors.
    let total_defectors = dataset.labels.num_defectors();
    println!(
        "\n({} of {} customers are true defectors; onset at month {})",
        total_defectors,
        dataset.labels.len(),
        cfg.onset_month
    );
}
