//! Product life-cycle analysis — the paper's future work ("deepen the
//! study of the characterization of significant products") as a library
//! workflow: per-item significance trajectories, fade detection, and
//! regained-product (recovery) events for one customer.
//!
//! Run: `cargo run --release --example trajectory_analysis`

use attrition::model::{detect_recoveries, faded_items, significance_trajectories};
use attrition::prelude::*;

fn main() {
    let cfg = ScenarioConfig::small();
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let db = WindowedDatabase::from_store(
        &seg_store,
        WindowSpec::months(cfg.start, 2),
        cfg.n_months.div_ceil(2),
        WindowAlignment::Global,
    );
    let seg_name = |raw: u32| {
        dataset
            .taxonomy
            .segment(SegmentId::new(raw))
            .map(|s| s.name.clone())
            .unwrap_or_else(|_| format!("s{raw}"))
    };

    // Pick the defector with the most faded products (some defectors'
    // drop months fall beyond the observation end and show nothing yet).
    let customer = dataset
        .labels
        .labels()
        .iter()
        .filter(|l| l.cohort.is_defector())
        .map(|l| l.customer)
        .max_by_key(|&c| {
            db.customer(c)
                .map(|w| faded_items(w, StabilityParams::PAPER, 8.0, 0.3).len())
                .unwrap_or(0)
        })
        .expect("scenario has defectors");
    let windows = db.customer(customer).expect("customer exists");
    println!(
        "customer {customer} ({:?}):",
        dataset.labels.cohort_of(customer).unwrap()
    );

    // 1. Top significance trajectories: how the repertoire built up.
    println!("\ntop-5 product trajectories (significance per 2-month window):");
    for t in significance_trajectories(windows, StabilityParams::PAPER, None)
        .iter()
        .take(5)
    {
        let spark: String = t
            .series
            .iter()
            .map(|&s| {
                // log-scale sparkline: significance spans orders of magnitude.
                let level = if s <= 0.0 {
                    0
                } else {
                    (s.log2() + 2.0).clamp(0.0, 7.0) as usize
                };
                [' ', '.', ':', '-', '=', '+', '*', '#'][level]
            })
            .collect();
        println!(
            "  {:<16} peak {:>7.1}  final/peak {:>4.0}%  [{spark}]",
            seg_name(t.item.raw()),
            t.peak,
            t.final_to_peak * 100.0
        );
    }

    // 2. Faded products: established then abandoned (the gradual losses
    //    single-window explanations can miss).
    println!("\nfaded products (peaked ≥ 8, now below 30% of peak):");
    for t in faded_items(windows, StabilityParams::PAPER, 8.0, 0.3) {
        println!(
            "  {:<16} peak {:>7.1} → final {:>5.1}",
            seg_name(t.item.raw()),
            t.peak,
            t.series.last().copied().unwrap_or(0.0)
        );
    }

    // 3. Recoveries: established products that came back after a gap —
    //    what a successful retention intervention looks like.
    println!("\nrecovery events (significant product returns after ≥1 absent window):");
    let mut any = false;
    for rec in detect_recoveries(windows, StabilityParams::PAPER, 2.0) {
        for r in &rec.regained {
            any = true;
            println!(
                "  window {:>2}: {:<16} back after {} window(s) away (S = {:.1})",
                rec.window.raw(),
                seg_name(r.item.raw()),
                r.absence_run,
                r.significance
            );
        }
    }
    if !any {
        println!("  (none for this customer)");
    }
}
