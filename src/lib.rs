//! # attrition
//!
//! A production-quality Rust implementation of the customer **stability
//! model** for individual-level attrition detection and explanation in
//! grocery retail, reproducing *"Understanding Customer Attrition at an
//! Individual Level: a New Model in Grocery Retail Context"* (Gautrais,
//! Cellier, Guyet, Quiniou, Termier — EDBT 2016).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `attrition-types` | ids, dates, money, baskets, receipts, taxonomy |
//! | [`util`] | `attrition-util` | deterministic PRNG, statistics, tables, CSV, charts |
//! | [`store`] | `attrition-store` | columnar receipt store, windowed databases, dataset stats |
//! | [`datagen`] | `attrition-datagen` | synthetic grocery-retail simulator |
//! | [`model`] | `attrition-core` | the stability model: significance, stability, explanation |
//! | [`rfm`] | `attrition-rfm` | the RFM + logistic-regression baseline |
//! | [`eval`] | `attrition-eval` | ROC/AUROC, cross-validation, grid search, calibration |
//! | [`obs`] | `attrition-obs` | pipeline observability: metrics registry, stage timers |
//! | [`serve`] | `attrition-serve` | online scoring server: sharded monitors behind a TCP line protocol |
//!
//! ## Quickstart
//!
//! ```
//! use attrition::prelude::*;
//!
//! // 1. A synthetic retailer: loyal + defecting cohorts over 16 months.
//! let dataset = attrition::datagen::generate(&ScenarioConfig::small());
//!
//! // 2. The paper's windowed database at segment granularity.
//! let seg_store = dataset.segment_store();
//! let spec = WindowSpec::months(dataset.config.start, 2);
//! let db = WindowedDatabase::from_store(&seg_store, spec, 8, WindowAlignment::Global);
//!
//! // 3. Stability of every customer at every window (α = 2).
//! let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
//!
//! // 4. AUROC of defector detection at the last window.
//! let pairs = matrix.attrition_scores_at(WindowIndex::new(7));
//! let labels: Vec<bool> = pairs
//!     .iter()
//!     .map(|(c, _)| dataset.labels.cohort_of(*c).unwrap().is_defector())
//!     .collect();
//! let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
//! let auc = attrition::eval::auroc(&labels, &scores);
//! assert!(auc > 0.7, "detection works: AUROC {auc}");
//! ```

pub use attrition_core as model;
pub use attrition_datagen as datagen;
pub use attrition_eval as eval;
pub use attrition_obs as obs;
pub use attrition_rfm as rfm;
pub use attrition_serve as serve;
pub use attrition_store as store;
pub use attrition_types as types;
pub use attrition_util as util;

/// The most common imports, for `use attrition::prelude::*`.
pub mod prelude {
    pub use crate::datagen::{
        figure2_customer, Cohort, CustomerLabel, GeneratedDataset, LabelSet, ScenarioConfig,
    };
    pub use crate::eval::{auroc, ConfusionMatrix, RocCurve, StratifiedKFold};
    pub use crate::model::{
        aggregate_explanations, analyze_customer, stability_series, StabilityClassifier,
        StabilityEngine, StabilityMatrix, StabilityMonitor, StabilityParams,
    };
    pub use crate::rfm::{out_of_fold_scores, RfmFeatures, RfmModel};
    pub use crate::store::{
        DatasetStats, ReceiptStore, ReceiptStoreBuilder, WindowAlignment, WindowSpec,
        WindowedDatabase,
    };
    pub use crate::types::{
        Basket, Cents, CustomerId, Date, ItemId, Receipt, SegmentId, Taxonomy, WindowIndex,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let _ = crate::model::StabilityParams::PAPER;
        let _ = crate::datagen::ScenarioConfig::small();
        let _ = crate::types::Date::EPOCH;
    }
}
