//! Golden determinism pins.
//!
//! The whole repository's claim of bit-reproducibility is only credible
//! if something would *fail* when a stream changes. These tests pin
//! exact values derived from the default small scenario. If you change
//! the generator, a sampler, or any consumption order of the PRNG
//! intentionally, update the constants here **and regenerate every
//! number in EXPERIMENTS.md** — that is exactly the reminder this test
//! exists to give.

use attrition::prelude::*;
use attrition::store::csv_io;

/// FNV-1a over a byte string: tiny, stable, good enough to fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn small_scenario_receipts_fingerprint_is_pinned() {
    let dataset = attrition::datagen::generate(&ScenarioConfig::small());
    let csv = csv_io::receipts_to_csv(&dataset.store);
    let fingerprint = fnv1a(csv.as_bytes());
    assert_eq!(
        (dataset.store.num_receipts(), fingerprint),
        (8043, 13834784866592823892),
        "the small scenario's receipt stream changed — if intentional, \
         update this pin and regenerate EXPERIMENTS.md"
    );
}

#[test]
fn small_scenario_stability_values_are_pinned() {
    let cfg = ScenarioConfig::small();
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let db = WindowedDatabase::from_store(
        &seg_store,
        WindowSpec::months(cfg.start, 2),
        8,
        WindowAlignment::Global,
    );
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
    // Pin the final-window AUROC to full precision.
    let pairs = matrix.attrition_scores_at(WindowIndex::new(7));
    let labels: Vec<bool> = pairs
        .iter()
        .map(|(c, _)| dataset.labels.cohort_of(*c).unwrap().is_defector())
        .collect();
    let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
    let auc = auroc(&labels, &scores);
    assert!(
        (auc - 0.9497222222222222).abs() < 1e-12,
        "final-window AUROC drifted: {auc} (pin 0.9497222222222222)"
    );
}

#[test]
fn prng_stream_is_pinned() {
    // Duplicated from attrition-util's unit test on purpose: this is the
    // cross-crate tripwire a refactor cannot silently delete together
    // with the implementation it guards.
    let mut rng = attrition::util::Rng::seed_from_u64(0);
    assert_eq!(rng.next_u64(), 11091344671253066420);
    assert_eq!(rng.next_u64(), 13793997310169335082);
}
