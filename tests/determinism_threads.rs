//! Thread-count invariance of the batch scoring engine.
//!
//! Customers are scored independently and merged back in chunk order,
//! so the number of worker threads must never change a single bit of
//! the output. This is load-bearing for the observability work: stage
//! timings and per-thread telemetry must stay strictly read-only with
//! respect to the scored results.

use attrition::prelude::*;

/// A 500-customer scenario — large enough that the engine actually
/// fans out (the serial fallback kicks in below 32 customers).
fn scenario_db() -> (WindowedDatabase, ScenarioConfig) {
    let mut cfg = ScenarioConfig::small();
    cfg.n_loyal = 250;
    cfg.n_defectors = 250;
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let spec = WindowSpec::months(cfg.start, 2);
    let n_windows = cfg.n_months.div_ceil(2);
    let db = WindowedDatabase::from_store(&seg_store, spec, n_windows, WindowAlignment::Global);
    (db, cfg)
}

#[test]
fn one_thread_and_eight_threads_agree_bit_for_bit() {
    let (db, _) = scenario_db();
    assert_eq!(db.num_customers(), 500);
    let serial = StabilityEngine::new(StabilityParams::PAPER)
        .with_threads(1)
        .compute(&db);
    let parallel = StabilityEngine::new(StabilityParams::PAPER)
        .with_threads(8)
        .compute(&db);

    assert_eq!(serial.num_customers(), parallel.num_customers());
    assert_eq!(serial.num_windows, parallel.num_windows);
    for (a, b) in serial.analyses().iter().zip(parallel.analyses()) {
        assert_eq!(a.customer, b.customer);
        // Bit-identical stability points: every float must match under
        // to_bits, not just approximately.
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.window, pb.window);
            assert_eq!(
                pa.value.to_bits(),
                pb.value.to_bits(),
                "customer {} window {:?}: {} vs {}",
                a.customer,
                pa.window,
                pa.value,
                pb.value
            );
        }
        // Explanation rankings (lost products and their shares) too.
        assert_eq!(a.explanations, b.explanations);
    }

    // The derived artifacts downstream consumers read must agree as well.
    let last = WindowIndex::new(serial.num_windows - 1);
    assert_eq!(
        serial.attrition_scores_at(last),
        parallel.attrition_scores_at(last)
    );
    assert_eq!(serial.rank_at(last, 50), parallel.rank_at(last, 50));
}
