//! End-to-end integration across all crates: generation → CSV roundtrip
//! → projection → windowing → both models → evaluation.

use attrition::prelude::*;
use attrition::store::csv_io;

#[test]
fn full_pipeline_on_small_scenario() {
    let cfg = ScenarioConfig::small();
    let dataset = attrition::datagen::generate(&cfg);

    // Dataset sanity.
    assert_eq!(dataset.store.num_customers(), 120);
    let stats = DatasetStats::compute(&dataset.store, Some(&dataset.taxonomy));
    assert_eq!(stats.span_months, cfg.n_months);
    assert!(stats.basket_size.mean > 5.0, "baskets implausibly small");
    assert!(stats.revenue.is_positive());

    // Segment projection shrinks the vocabulary.
    let seg_store = dataset.segment_store();
    let product_items = dataset.store.max_item_id().unwrap().raw();
    let segment_items = seg_store.max_item_id().unwrap().raw();
    assert!(segment_items < product_items);

    // Window + stability + AUROC at the final window.
    let spec = WindowSpec::months(cfg.start, 2);
    let n_windows = cfg.n_months.div_ceil(2);
    let db = WindowedDatabase::from_store(&seg_store, spec, n_windows, WindowAlignment::Global);
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
    let pairs = matrix.attrition_scores_at(WindowIndex::new(n_windows - 1));
    let labels: Vec<bool> = pairs
        .iter()
        .map(|(c, _)| dataset.labels.cohort_of(*c).unwrap().is_defector())
        .collect();
    let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
    let stab_auc = auroc(&labels, &scores);
    assert!(stab_auc > 0.85, "stability AUROC {stab_auc}");

    // RFM baseline also discriminates at the end.
    let model = RfmModel::new(1);
    let rows = model.features_at(&db, WindowIndex::new(n_windows - 1));
    let features: Vec<RfmFeatures> = rows.iter().map(|(_, f)| *f).collect();
    let oof = out_of_fold_scores(&features, &labels, 1, 5, 9);
    let rfm_auc = auroc(&labels, &oof);
    assert!(rfm_auc > 0.75, "RFM AUROC {rfm_auc}");
}

#[test]
fn csv_roundtrip_preserves_model_output() {
    let cfg = ScenarioConfig::small();
    let dataset = attrition::datagen::generate(&cfg);

    // Receipts + taxonomy survive a CSV roundtrip…
    let receipts_csv = csv_io::receipts_to_csv(&dataset.store);
    let store2 = csv_io::receipts_from_csv(&receipts_csv).expect("own CSV parses");
    assert_eq!(store2.num_receipts(), dataset.store.num_receipts());
    let tax_csv = csv_io::taxonomy_to_csv(&dataset.taxonomy);
    let tax2 = csv_io::taxonomy_from_csv(&tax_csv).expect("own CSV parses");
    assert_eq!(tax2.num_products(), dataset.taxonomy.num_products());

    // …and produce identical stability values.
    let spec = WindowSpec::months(cfg.start, 2);
    let n = cfg.n_months.div_ceil(2);
    let db1 = WindowedDatabase::from_store(
        &attrition::store::project_to_segments(&dataset.store, &dataset.taxonomy).unwrap(),
        spec,
        n,
        WindowAlignment::Global,
    );
    let db2 = WindowedDatabase::from_store(
        &attrition::store::project_to_segments(&store2, &tax2).unwrap(),
        spec,
        n,
        WindowAlignment::Global,
    );
    let m1 = StabilityEngine::new(StabilityParams::PAPER).compute(&db1);
    let m2 = StabilityEngine::new(StabilityParams::PAPER).compute(&db2);
    for k in 0..n {
        assert_eq!(
            m1.stability_at(WindowIndex::new(k)),
            m2.stability_at(WindowIndex::new(k)),
            "window {k} diverged after CSV roundtrip"
        );
    }
}

#[test]
fn streaming_monitor_matches_batch_engine() {
    // The online monitor and the batch engine must agree on every closed
    // window for every customer of a generated dataset.
    let mut cfg = ScenarioConfig::small();
    cfg.n_loyal = 20;
    cfg.n_defectors = 20;
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let spec = WindowSpec::months(cfg.start, 2);
    let n_windows = cfg.n_months.div_ceil(2);

    // Batch.
    let db = WindowedDatabase::from_store(&seg_store, spec, n_windows, WindowAlignment::Global);
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);

    // Online: replay receipts in (date, customer) order.
    let mut monitor = attrition::model::StabilityMonitor::new(spec, StabilityParams::PAPER);
    let mut stream: Vec<(CustomerId, Date, Basket)> = seg_store
        .receipts()
        .map(|r| (r.customer, r.date, Basket::new(r.items.to_vec())))
        .collect();
    stream.sort_by_key(|(c, d, _)| (*d, *c));
    let mut online: std::collections::HashMap<(CustomerId, u32), f64> =
        std::collections::HashMap::new();
    for (customer, date, basket) in stream {
        for closed in monitor.ingest(customer, date, &basket) {
            online.insert(
                (closed.customer, closed.point.window.raw()),
                closed.point.value,
            );
        }
    }
    for closed in monitor.flush_until(cfg.start.add_months(cfg.n_months as i32)) {
        online.insert(
            (closed.customer, closed.point.window.raw()),
            closed.point.value,
        );
    }

    let mut compared = 0usize;
    for analysis in matrix.analyses() {
        for point in &analysis.points {
            if let Some(&v) = online.get(&(analysis.customer, point.window.raw())) {
                assert!(
                    (v - point.value).abs() < 1e-12,
                    "customer {} window {}: online {v} vs batch {}",
                    analysis.customer,
                    point.window,
                    point.value
                );
                compared += 1;
            }
        }
    }
    // Every customer appears in the stream, so most windows must match.
    assert!(
        compared >= 40 * (n_windows as usize - 1),
        "too few comparable windows: {compared}"
    );
}

#[test]
fn dataset_generation_is_deterministic_across_processes() {
    // Byte-stable CSV output is the strongest cheap determinism check.
    let a = attrition::datagen::generate(&ScenarioConfig::small());
    let b = attrition::datagen::generate(&ScenarioConfig::small());
    assert_eq!(
        csv_io::receipts_to_csv(&a.store),
        csv_io::receipts_to_csv(&b.store)
    );
    assert_eq!(
        csv_io::taxonomy_to_csv(&a.taxonomy),
        csv_io::taxonomy_to_csv(&b.taxonomy)
    );
}

#[test]
fn classifier_flags_defectors_not_loyals_late() {
    let cfg = ScenarioConfig::small();
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let db = WindowedDatabase::from_store(
        &seg_store,
        WindowSpec::months(cfg.start, 2),
        cfg.n_months.div_ceil(2),
        WindowAlignment::Global,
    );
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
    let k = WindowIndex::new(cfg.n_months.div_ceil(2) - 1);
    let classifier = StabilityClassifier::new(0.75);
    let mut flagged_defectors = 0usize;
    let mut flagged_loyal = 0usize;
    for (customer, value) in matrix.stability_at(k) {
        let flagged =
            classifier.classify_value(value) == attrition::model::classifier::Verdict::Defecting;
        if flagged {
            if dataset.labels.cohort_of(customer).unwrap().is_defector() {
                flagged_defectors += 1;
            } else {
                flagged_loyal += 1;
            }
        }
    }
    assert!(
        flagged_defectors >= 10,
        "too few defectors flagged: {flagged_defectors}"
    );
    assert!(
        flagged_defectors >= 5 * flagged_loyal.max(1),
        "flags not concentrated on defectors: {flagged_defectors} vs {flagged_loyal}"
    );
}
