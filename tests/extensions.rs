//! Integration tests of the extension APIs (recovery detection, gains
//! curves, store queries, ranking, significance variants) against a
//! generated dataset — the features beyond the paper's core that
//! DESIGN.md §7 commits to.

use attrition::eval::GainsCurve;
use attrition::model::{detect_recoveries, stability_series_variant, SignificanceVariant};
use attrition::prelude::*;
use attrition::store::Query;

fn prepared() -> (
    attrition::datagen::GeneratedDataset,
    WindowedDatabase,
    StabilityMatrix,
) {
    let cfg = ScenarioConfig::small();
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let db = WindowedDatabase::from_store(
        &seg_store,
        WindowSpec::months(cfg.start, 2),
        cfg.n_months.div_ceil(2),
        WindowAlignment::Global,
    );
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
    (dataset, db, matrix)
}

#[test]
fn ranking_concentrates_on_defectors() {
    let (dataset, db, matrix) = prepared();
    let last = WindowIndex::new(db.num_windows - 1);
    let top20 = matrix.rank_at(last, 20);
    let defectors = top20
        .iter()
        .filter(|(c, _)| dataset.labels.cohort_of(*c).unwrap().is_defector())
        .count();
    assert!(
        defectors >= 17,
        "only {defectors}/20 top-ranked are defectors"
    );
}

#[test]
fn gains_curve_supports_campaign_sizing() {
    let (dataset, db, matrix) = prepared();
    let last = WindowIndex::new(db.num_windows - 1);
    let pairs = matrix.attrition_scores_at(last);
    let labels: Vec<bool> = pairs
        .iter()
        .map(|(c, _)| dataset.labels.cohort_of(*c).unwrap().is_defector())
        .collect();
    let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
    let curve = GainsCurve::compute(&labels, &scores);
    // Targeting half the population must capture well over half the
    // defectors (base rate is 50%, detection is strong at the end).
    let captured = curve.captured_at(0.5).unwrap();
    assert!(captured > 0.8, "captured {captured} at 50% targeting");
    // And capturing 80% of defectors must need well under 80% targeting.
    let targeted = curve.targeted_for(0.8).unwrap();
    assert!(targeted < 0.6, "needs {targeted} targeting for 80% capture");
}

#[test]
fn queries_compose_with_models() {
    let (dataset, _, _) = prepared();
    let cfg = &dataset.config;
    // Restrict the store to the pre-onset period and to loyal customers:
    // total spend must be positive, and re-windowing the filtered store
    // still works.
    let loyal: Vec<CustomerId> = dataset
        .labels
        .labels()
        .iter()
        .filter(|l| !l.cohort.is_defector())
        .map(|l| l.customer)
        .collect();
    let sub = Query::new()
        .customers(loyal.iter().copied())
        .until(cfg.start.add_months(cfg.onset_month as i32))
        .materialize(&dataset.store);
    assert!(sub.num_receipts() > 0);
    assert_eq!(sub.num_customers(), loyal.len());
    let (_, hi) = sub.date_range().unwrap();
    assert!(hi < cfg.start.add_months(cfg.onset_month as i32));
    // The filtered store windows and scores cleanly.
    let db = WindowedDatabase::covering_store(
        &sub,
        WindowSpec::months(cfg.start, 2),
        WindowAlignment::Global,
    );
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
    assert_eq!(matrix.num_customers(), loyal.len());
}

#[test]
fn recoveries_exist_for_noisy_loyal_customers() {
    let (dataset, db, _) = prepared();
    // Across a noisy population, some loyal customer misses an item for
    // a window and regains it; recovery detection must surface that and
    // never fire on window 0.
    let mut total_recoveries = 0usize;
    for windows in db.customers() {
        let recs = detect_recoveries(windows, StabilityParams::PAPER, 1.0);
        assert!(recs[0].regained.is_empty());
        total_recoveries += recs.iter().map(|r| r.regained.len()).sum::<usize>();
    }
    assert!(
        total_recoveries > 50,
        "expected recoveries across the population, saw {total_recoveries}"
    );
    drop(dataset);
}

#[test]
fn variants_agree_on_who_is_defecting_late() {
    let (dataset, db, _) = prepared();
    let last = (db.num_windows - 1) as usize;
    for variant in [
        SignificanceVariant::PaperExponential { alpha: 2.0 },
        SignificanceVariant::FrequencyRatio,
        SignificanceVariant::Ewma { lambda: 0.3 },
    ] {
        let mut labels = Vec::new();
        let mut scores = Vec::new();
        for windows in db.customers() {
            let series = stability_series_variant(windows, variant);
            labels.push(
                dataset
                    .labels
                    .cohort_of(windows.customer)
                    .unwrap()
                    .is_defector(),
            );
            scores.push(1.0 - series[last].value);
        }
        let auc = auroc(&labels, &scores);
        assert!(auc > 0.85, "variant {} late AUROC {auc}", variant.label());
    }
}
