//! Paper-shape assertions: the reproduction bands EXPERIMENTS.md records
//! must keep holding. These encode Figure 1, the headline AUROC, and
//! Figure 2's narrative as tests, so a regression in any crate that
//! would silently distort the reproduction fails loudly.

use attrition::datagen::{figure2_customer, Simulator};
use attrition::prelude::*;
use attrition::store::project_to_segments;

fn auroc_at(matrix: &StabilityMatrix, labels: &LabelSet, k: u32) -> f64 {
    let pairs = matrix.attrition_scores_at(WindowIndex::new(k));
    let lab: Vec<bool> = pairs
        .iter()
        .map(|(c, _)| labels.cohort_of(*c).unwrap().is_defector())
        .collect();
    let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
    auroc(&lab, &scores)
}

#[test]
fn figure1_shape_holds() {
    let cfg = ScenarioConfig::paper_default();
    let dataset = attrition::datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let spec = WindowSpec::months(cfg.start, 2);
    let db = WindowedDatabase::from_store(&seg_store, spec, 14, WindowAlignment::Global);
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);

    // (i) Near-chance before the onset (months 12–18 → windows 5..=8).
    for k in 5..=8 {
        let a = auroc_at(&matrix, &dataset.labels, k);
        assert!(
            (0.40..0.62).contains(&a),
            "pre-onset window {k}: AUROC {a} not near chance"
        );
    }

    // (ii) The headline: two months after onset (window 9, ending month
    // 20) the paper reports 0.79; the synthetic band is 0.70–0.90.
    let headline = auroc_at(&matrix, &dataset.labels, 9);
    assert!(
        (0.70..0.90).contains(&headline),
        "headline AUROC {headline} outside the paper band"
    );

    // (iii) Detection keeps improving as defection deepens.
    let late = auroc_at(&matrix, &dataset.labels, 11);
    assert!(late > headline, "late AUROC {late} <= headline {headline}");
    assert!(late > 0.9, "late AUROC {late} too low");

    // (iv) The RFM baseline is comparable after the onset: neither model
    // dominates by more than 0.25 AUROC at month 22+, and RFM also ends
    // high.
    let rfm_model = RfmModel::new(1);
    let mut rfm_last = 0.0;
    for k in [10u32, 11, 12, 13] {
        let rows = rfm_model.features_at(&db, WindowIndex::new(k));
        let customers: Vec<CustomerId> = rows.iter().map(|(c, _)| *c).collect();
        let features: Vec<RfmFeatures> = rows.iter().map(|(_, f)| *f).collect();
        let labels: Vec<bool> = customers
            .iter()
            .map(|c| dataset.labels.cohort_of(*c).unwrap().is_defector())
            .collect();
        let scores = out_of_fold_scores(&features, &labels, 1, 5, 42);
        let rfm_auc = auroc(&labels, &scores);
        let stab_auc = auroc_at(&matrix, &dataset.labels, k);
        assert!(
            (stab_auc - rfm_auc).abs() < 0.25,
            "window {k}: stability {stab_auc} vs RFM {rfm_auc} diverge"
        );
        rfm_last = rfm_auc;
    }
    assert!(rfm_last > 0.9, "RFM never catches up: {rfm_last}");
}

#[test]
fn figure2_narrative_holds() {
    let cfg = ScenarioConfig::paper_default();
    let dataset = attrition::datagen::generate(&cfg);
    let customer = CustomerId::new(1_000_000);
    let profile = figure2_customer(&dataset.taxonomy, customer, 20);
    let sim = Simulator::new(
        cfg.start,
        cfg.n_months,
        cfg.seasonality.clone(),
        cfg.seed ^ 0xF16,
    );
    let store = sim.run(&[profile], &dataset.taxonomy);
    let seg_store = project_to_segments(&store, &dataset.taxonomy).unwrap();
    let db = WindowedDatabase::from_store(
        &seg_store,
        WindowSpec::months(cfg.start, 2),
        14,
        WindowAlignment::Global,
    );
    let analysis = analyze_customer(db.customer(customer).unwrap(), StabilityParams::PAPER, 4);

    // Loyal through month 20 (windows 2..=9 after warm-up).
    for k in 2..=9usize {
        assert!(
            analysis.points[k].value > 0.9,
            "window {k} should be loyal: {}",
            analysis.points[k].value
        );
    }
    // Coffee loss in the window ending month 22 (w10).
    let w10 = &analysis.points[10];
    assert!(
        w10.value < 0.95,
        "no visible drop at the coffee loss: {}",
        w10.value
    );
    let coffee = dataset.taxonomy.segment_by_name("coffee").unwrap();
    let primary10 = analysis.explanations[10].primary().expect("a loss");
    assert_eq!(primary10.item.raw(), coffee.raw(), "w10 should lose coffee");

    // Sharper drop at month 24 (w11): milk + sponges + cheese.
    let w11 = &analysis.points[11];
    assert!(
        w11.value < w10.value,
        "second drop should be sharper: {} vs {}",
        w11.value,
        w10.value
    );
    let lost11: Vec<u32> = analysis.explanations[11]
        .lost
        .iter()
        .filter(|l| l.share > 0.05)
        .map(|l| l.item.raw())
        .collect();
    for name in ["milk", "cheese", "sponges"] {
        let seg = dataset.taxonomy.segment_by_name(name).unwrap();
        assert!(
            lost11.contains(&seg.raw()),
            "w11 explanation missing {name}: {lost11:?}"
        );
    }
}
