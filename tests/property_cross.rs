//! Cross-implementation property tests: the optimized implementations
//! are checked against naive reference implementations on random inputs.

use attrition::prelude::*;
use attrition::util::Rng;
use proptest::prelude::*;

/// Naive O(n²) AUROC: fraction of (positive, negative) pairs ranked
/// correctly, ties counting half.
fn naive_auroc(labels: &[bool], scores: &[f64]) -> f64 {
    let pos: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(&l, _)| l)
        .map(|(_, &s)| s)
        .collect();
    let neg: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(&l, _)| !l)
        .map(|(_, &s)| s)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return f64::NAN;
    }
    let mut wins = 0.0;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() * neg.len()) as f64
}

/// Naive stability at window `k` straight from the paper's definitions.
fn naive_stability(history: &[Vec<u32>], k: usize, alpha: f64) -> f64 {
    let mut all_items: Vec<u32> = history.iter().flatten().copied().collect();
    all_items.sort_unstable();
    all_items.dedup();
    let sig = |p: u32| -> f64 {
        let c = history[..k].iter().filter(|u| u.contains(&p)).count() as i32;
        let l = k as i32 - c;
        if c > 0 {
            alpha.powi(c - l)
        } else {
            0.0
        }
    };
    let total: f64 = all_items.iter().map(|&p| sig(p)).sum();
    let present: f64 = all_items
        .iter()
        .filter(|&&p| history[k].contains(&p))
        .map(|&p| sig(p))
        .sum();
    if total > 0.0 {
        present / total
    } else {
        1.0
    }
}

fn windows_of(history: &[Vec<u32>]) -> attrition::store::CustomerWindows {
    attrition::store::CustomerWindows {
        customer: CustomerId::new(1),
        baskets: history.iter().map(|v| Basket::from_raw(v)).collect(),
        trips: vec![1; history.len()],
        spend: vec![Cents(0); history.len()],
        last_purchase: vec![None; history.len()],
        spec: WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auroc_matches_naive_pair_counting(seed in 0u64..5000, n in 4usize..80) {
        let mut rng = Rng::seed_from_u64(seed);
        let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        // Quantized scores to exercise tie handling.
        let scores: Vec<f64> = (0..n).map(|_| (rng.f64() * 6.0).floor()).collect();
        let fast = auroc(&labels, &scores);
        let naive = naive_auroc(&labels, &scores);
        if naive.is_nan() {
            prop_assert!(fast.is_nan());
        } else {
            prop_assert!((fast - naive).abs() < 1e-12, "fast {fast} vs naive {naive}");
        }
    }

    #[test]
    fn stability_matches_naive_definition(
        history in proptest::collection::vec(proptest::collection::vec(0u32..8, 0..5), 1..12)
    ) {
        let w = windows_of(&history);
        let series = attrition::model::stability_series(&w, StabilityParams::PAPER);
        for (k, point) in series.iter().enumerate() {
            let naive = naive_stability(&history, k, 2.0);
            prop_assert!(
                (point.value - naive).abs() < 1e-9,
                "window {k}: fast {} vs naive {naive}", point.value
            );
        }
    }

    #[test]
    fn windowing_partitions_receipts(seed in 0u64..2000) {
        // Every receipt inside the horizon lands in exactly one window and
        // its items are all in that window's union.
        let mut rng = Rng::seed_from_u64(seed);
        let d0 = Date::from_ymd(2012, 5, 1).unwrap();
        let mut builder = ReceiptStoreBuilder::new();
        let n_receipts = 60;
        for _ in 0..n_receipts {
            let date = d0 + rng.u64_below(300) as i32;
            let items: Vec<u32> = (0..rng.u64_below(4) + 1)
                .map(|_| rng.u64_below(20) as u32)
                .collect();
            builder.push(Receipt::new(
                CustomerId::new(rng.u64_below(3)),
                date,
                Basket::from_raw(&items),
                Cents(100),
            ));
        }
        let store = builder.build();
        let spec = WindowSpec::months(d0, 2);
        let n_windows = 5u32; // horizon: 10 months = 300+ days
        let db = WindowedDatabase::from_store(&store, spec, n_windows, WindowAlignment::Global);
        for r in store.receipts() {
            let Some(k) = spec.window_of(r.date) else { continue };
            if k.raw() >= n_windows {
                continue;
            }
            // The receipt's window contains all its items.
            let cw = db.customer(r.customer).unwrap();
            for &item in r.items {
                prop_assert!(cw.baskets[k.index()].contains(item));
            }
            // And the receipt's date is within that window's bounds only.
            prop_assert!(r.date >= spec.window_start(k.raw()));
            prop_assert!(r.date < spec.window_end(k.raw()));
        }
        // Trip counts add up.
        let total_trips: u32 = db.customers().iter().flat_map(|c| c.trips.iter()).sum();
        let in_horizon = store
            .receipts()
            .filter(|r| {
                spec.window_of(r.date)
                    .map(|k| k.raw() < n_windows)
                    .unwrap_or(false)
            })
            .count();
        prop_assert_eq!(total_trips as usize, in_horizon);
    }

    #[test]
    fn logistic_irls_reaches_stationary_point(seed in 0u64..500) {
        // At convergence the penalized gradient must vanish.
        use attrition::rfm::LogisticRegression;
        let mut rng = Rng::seed_from_u64(seed);
        let n = 300;
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.normal(), rng.normal()]).collect();
        let y: Vec<bool> = x
            .iter()
            .map(|r| rng.bernoulli(1.0 / (1.0 + (-(r[0] - 0.5 * r[1])).exp())))
            .collect();
        prop_assume!(y.iter().any(|&l| l) && y.iter().any(|&l| !l));
        let mut lr = LogisticRegression::new(2).with_l2(1e-3);
        let report = lr.fit(&x, &y);
        prop_assume!(report.converged);
        // gradient_j = Σ (y − p)·x_j − λ w_j  (λ applied to non-intercept)
        let mut grad = [0.0f64; 3];
        for (row, &label) in x.iter().zip(&y) {
            let p = lr.predict_proba(row);
            let resid = (if label { 1.0 } else { 0.0 }) - p;
            grad[0] += resid;
            grad[1] += resid * row[0];
            grad[2] += resid * row[1];
        }
        grad[1] -= 1e-3 * lr.weights[1];
        grad[2] -= 1e-3 * lr.weights[2];
        for (j, g) in grad.iter().enumerate() {
            prop_assert!(g.abs() < 1e-4 * n as f64, "gradient[{j}] = {g}");
        }
    }
}
