//! Cross-implementation property tests: the optimized implementations
//! are checked against naive reference implementations on random inputs.

use attrition::prelude::*;
use attrition::util::check::{forall, gen_vec};
use attrition::util::Rng;

/// Naive O(n²) AUROC: fraction of (positive, negative) pairs ranked
/// correctly, ties counting half.
fn naive_auroc(labels: &[bool], scores: &[f64]) -> f64 {
    let pos: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(&l, _)| l)
        .map(|(_, &s)| s)
        .collect();
    let neg: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(&l, _)| !l)
        .map(|(_, &s)| s)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return f64::NAN;
    }
    let mut wins = 0.0;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() * neg.len()) as f64
}

/// Naive stability at window `k` straight from the paper's definitions.
fn naive_stability(history: &[Vec<u32>], k: usize, alpha: f64) -> f64 {
    let mut all_items: Vec<u32> = history.iter().flatten().copied().collect();
    all_items.sort_unstable();
    all_items.dedup();
    let sig = |p: u32| -> f64 {
        let c = history[..k].iter().filter(|u| u.contains(&p)).count() as i32;
        let l = k as i32 - c;
        if c > 0 {
            alpha.powi(c - l)
        } else {
            0.0
        }
    };
    let total: f64 = all_items.iter().map(|&p| sig(p)).sum();
    let present: f64 = all_items
        .iter()
        .filter(|&&p| history[k].contains(&p))
        .map(|&p| sig(p))
        .sum();
    if total > 0.0 {
        present / total
    } else {
        1.0
    }
}

fn windows_of(history: &[Vec<u32>]) -> attrition::store::CustomerWindows {
    attrition::store::CustomerWindows {
        customer: CustomerId::new(1),
        baskets: history.iter().map(|v| Basket::from_raw(v)).collect(),
        trips: vec![1; history.len()],
        spend: vec![Cents(0); history.len()],
        last_purchase: vec![None; history.len()],
        spec: WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1),
    }
}

#[test]
fn auroc_matches_naive_pair_counting() {
    forall(
        64,
        |rng| {
            let n = 4 + rng.usize_below(76);
            let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
            // Quantized scores to exercise tie handling.
            let scores: Vec<f64> = (0..n).map(|_| (rng.f64() * 6.0).floor()).collect();
            (labels, scores)
        },
        |(labels, scores)| {
            let fast = auroc(labels, scores);
            let naive = naive_auroc(labels, scores);
            if naive.is_nan() {
                assert!(fast.is_nan());
            } else {
                assert!((fast - naive).abs() < 1e-12, "fast {fast} vs naive {naive}");
            }
        },
    );
}

#[test]
fn stability_matches_naive_definition() {
    forall(
        64,
        |rng| {
            gen_vec(rng, 1, 11, |r| {
                gen_vec(r, 0, 4, |rr| rr.u64_below(8) as u32)
            })
        },
        |history| {
            let w = windows_of(history);
            let series = attrition::model::stability_series(&w, StabilityParams::PAPER);
            for (k, point) in series.iter().enumerate() {
                let naive = naive_stability(history, k, 2.0);
                assert!(
                    (point.value - naive).abs() < 1e-9,
                    "window {k}: fast {} vs naive {naive}",
                    point.value
                );
            }
        },
    );
}

#[test]
fn windowing_partitions_receipts() {
    // Every receipt inside the horizon lands in exactly one window and
    // its items are all in that window's union.
    forall(
        64,
        |rng| rng.next_u64(),
        |&seed| {
            let mut rng = Rng::seed_from_u64(seed);
            let d0 = Date::from_ymd(2012, 5, 1).unwrap();
            let mut builder = ReceiptStoreBuilder::new();
            let n_receipts = 60;
            for _ in 0..n_receipts {
                let date = d0 + rng.u64_below(300) as i32;
                let items: Vec<u32> = (0..rng.u64_below(4) + 1)
                    .map(|_| rng.u64_below(20) as u32)
                    .collect();
                builder.push(Receipt::new(
                    CustomerId::new(rng.u64_below(3)),
                    date,
                    Basket::from_raw(&items),
                    Cents(100),
                ));
            }
            let store = builder.build();
            let spec = WindowSpec::months(d0, 2);
            let n_windows = 5u32; // horizon: 10 months = 300+ days
            let db = WindowedDatabase::from_store(&store, spec, n_windows, WindowAlignment::Global);
            for r in store.receipts() {
                let Some(k) = spec.window_of(r.date) else {
                    continue;
                };
                if k.raw() >= n_windows {
                    continue;
                }
                // The receipt's window contains all its items.
                let cw = db.customer(r.customer).unwrap();
                for &item in r.items {
                    assert!(cw.baskets[k.index()].contains(item));
                }
                // And the receipt's date is within that window's bounds only.
                assert!(r.date >= spec.window_start(k.raw()));
                assert!(r.date < spec.window_end(k.raw()));
            }
            // Trip counts add up.
            let total_trips: u32 = db.customers().iter().flat_map(|c| c.trips.iter()).sum();
            let in_horizon = store
                .receipts()
                .filter(|r| {
                    spec.window_of(r.date)
                        .map(|k| k.raw() < n_windows)
                        .unwrap_or(false)
                })
                .count();
            assert_eq!(total_trips as usize, in_horizon);
        },
    );
}

#[test]
fn logistic_irls_reaches_stationary_point() {
    // At convergence the penalized gradient must vanish.
    use attrition::rfm::LogisticRegression;
    forall(
        64,
        |rng| rng.next_u64(),
        |&seed| {
            let mut rng = Rng::seed_from_u64(seed);
            let n = 300;
            let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.normal(), rng.normal()]).collect();
            let y: Vec<bool> = x
                .iter()
                .map(|r| rng.bernoulli(1.0 / (1.0 + (-(r[0] - 0.5 * r[1])).exp())))
                .collect();
            if !(y.iter().any(|&l| l) && y.iter().any(|&l| !l)) {
                return; // both classes needed; vanishingly rare at n=300
            }
            let mut lr = LogisticRegression::new(2).with_l2(1e-3);
            let report = lr.fit(&x, &y);
            if !report.converged {
                return; // IRLS non-convergence is not this property's concern
            }
            // gradient_j = Σ (y − p)·x_j − λ w_j  (λ applied to non-intercept)
            let mut grad = [0.0f64; 3];
            for (row, &label) in x.iter().zip(&y) {
                let p = lr.predict_proba(row);
                let resid = (if label { 1.0 } else { 0.0 }) - p;
                grad[0] += resid;
                grad[1] += resid * row[0];
                grad[2] += resid * row[1];
            }
            grad[1] -= 1e-3 * lr.weights[1];
            grad[2] -= 1e-3 * lr.weights[2];
            for (j, g) in grad.iter().enumerate() {
                assert!(g.abs() < 1e-4 * n as f64, "gradient[{j}] = {g}");
            }
        },
    );
}
